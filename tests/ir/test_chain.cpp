#include "ir/chain.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "search/space.hpp"

namespace mcf {
namespace {

ChainSpec paper_chain() {
  // The paper's running example: C = A x B, E = C x D.
  return ChainSpec::gemm_chain("ex", 1, 1024, 1024, 512, 512);
}

TEST(Chain, LoopCountAndDims) {
  const ChainSpec c = paper_chain();
  EXPECT_EQ(c.num_loops(), 4);
  EXPECT_EQ(c.loop_dim(0), 1024);  // m
  EXPECT_EQ(c.loop_dim(1), 512);   // k
  EXPECT_EQ(c.loop_dim(2), 1024);  // n
  EXPECT_EQ(c.loop_dim(3), 512);   // h
}

TEST(Chain, LoopNamesMatchPaper) {
  const ChainSpec c = paper_chain();
  EXPECT_EQ(c.loop_name(0), 'm');
  EXPECT_EQ(c.loop_name(1), 'k');
  EXPECT_EQ(c.loop_name(2), 'n');
  EXPECT_EQ(c.loop_name(3), 'h');
}

TEST(Chain, ReductionAndColumnLoops) {
  const ChainSpec c = paper_chain();
  EXPECT_EQ(c.reduction_loop(0), 1);  // k reduces op0
  EXPECT_EQ(c.out_col_loop(0), 2);    // n is op0's output column
  EXPECT_EQ(c.reduction_loop(1), 2);  // n reduces op1
  EXPECT_EQ(c.out_col_loop(1), 3);    // h is op1's output column
}

TEST(Chain, GlobalSpatialLoops) {
  const ChainSpec c = paper_chain();
  EXPECT_TRUE(c.is_global_spatial(0));   // m
  EXPECT_FALSE(c.is_global_spatial(1));  // k
  EXPECT_FALSE(c.is_global_spatial(2));  // n (reduction of op1)
  EXPECT_TRUE(c.is_global_spatial(3));   // h
}

TEST(Chain, RelatedLoopsPerOp) {
  const ChainSpec c = paper_chain();
  EXPECT_EQ(c.related_loops(0), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(c.related_loops(1), (std::vector<int>{0, 2, 3}));
}

TEST(Chain, TensorTableMatchesPaperNaming) {
  const ChainSpec c = paper_chain();
  EXPECT_EQ(c.num_tensors(), 5);
  EXPECT_EQ(c.tensor(0).name, "A");
  EXPECT_EQ(c.tensor(c.op_weight_tensor(0)).name, "B");
  EXPECT_EQ(c.tensor(c.op_weight_tensor(1)).name, "D");
  EXPECT_EQ(c.tensor(c.op_output_tensor(0)).name, "C");
  EXPECT_EQ(c.tensor(c.op_output_tensor(1)).name, "E");
}

TEST(Chain, TensorKindsAndRoles) {
  const ChainSpec c = paper_chain();
  EXPECT_EQ(c.tensor(0).kind, TensorKind::Input);
  EXPECT_EQ(c.tensor(c.op_weight_tensor(0)).kind, TensorKind::Weight);
  EXPECT_EQ(c.tensor(c.op_output_tensor(0)).kind, TensorKind::Intermediate);
  EXPECT_EQ(c.tensor(c.output_tensor()).kind, TensorKind::Output);
}

TEST(Chain, TensorIndexLoops) {
  const ChainSpec c = paper_chain();
  EXPECT_EQ(c.tensor(0).loops, (std::vector<int>{0, 1}));                       // A(m,k)
  EXPECT_EQ(c.tensor(c.op_weight_tensor(0)).loops, (std::vector<int>{1, 2}));   // B(k,n)
  EXPECT_EQ(c.tensor(c.op_output_tensor(0)).loops, (std::vector<int>{0, 2}));   // C(m,n)
  EXPECT_EQ(c.tensor(c.op_weight_tensor(1)).loops, (std::vector<int>{2, 3}));   // D(n,h)
  EXPECT_EQ(c.tensor(c.output_tensor()).loops, (std::vector<int>{0, 3}));       // E(m,h)
}

TEST(Chain, IntermediateProducerConsumerLinks) {
  const ChainSpec c = paper_chain();
  const auto& inter = c.tensor(c.op_output_tensor(0));
  EXPECT_EQ(inter.producer_op, 0);
  EXPECT_EQ(inter.consumer_op, 1);
  EXPECT_EQ(c.op_input_tensor(1), c.op_output_tensor(0));
}

TEST(Chain, TotalFlops) {
  const ChainSpec c = ChainSpec::gemm_chain("t", 2, 8, 16, 4, 32);
  // op0: 2*8*4*16, op1: 2*8*16*32, batch 2.
  EXPECT_DOUBLE_EQ(c.total_flops(), 2.0 * (2.0 * 8 * 4 * 16 + 2.0 * 8 * 16 * 32));
}

TEST(Chain, MinTrafficElems) {
  const ChainSpec c = ChainSpec::gemm_chain("t", 2, 8, 16, 4, 32);
  // A(8x4) + B(4x16) + D(16x32) + E(8x32), x batch 2.
  EXPECT_EQ(c.min_traffic_elems(), 2 * (8 * 4 + 4 * 16 + 16 * 32 + 8 * 32));
}

TEST(Chain, AttentionFactorySetsSoftmax) {
  const ChainSpec c = ChainSpec::attention("s", 12, 512, 512, 64, 64);
  EXPECT_EQ(c.batch(), 12);
  EXPECT_EQ(c.epilogue(0), Epilogue::OnlineSoftmax);
  EXPECT_EQ(c.epilogue(1), Epilogue::None);
  EXPECT_NEAR(c.softmax_scale(), 1.0f / std::sqrt(64.0f), 1e-7);
}

TEST(Chain, ThreeOperatorChain) {
  const ChainSpec c("triple", 1, 64, {32, 48, 16, 24});
  EXPECT_EQ(c.num_ops(), 3);
  EXPECT_EQ(c.num_loops(), 5);
  EXPECT_EQ(c.loop_name(4), 'g');
  EXPECT_TRUE(c.is_global_spatial(4));
  EXPECT_FALSE(c.is_global_spatial(3));  // h reduces op2 here
  EXPECT_EQ(c.tensor(c.output_tensor()).loops, (std::vector<int>{0, 4}));
}

TEST(Chain, ToStringMentionsNameAndEpilogue) {
  const ChainSpec c = ChainSpec::attention("s1", 8, 512, 512, 64, 64);
  const std::string s = c.to_string();
  EXPECT_NE(s.find("s1"), std::string::npos);
  EXPECT_NE(s.find("softmax"), std::string::npos);
}

// Validation is non-aborting: invalid chains carry the offending field in
// validation_error() and the FusionEngine surfaces them as
// FusionStatus::InvalidChain.
TEST(ChainValidation, RejectsEmptyChain) {
  const ChainSpec c("bad", 1, 8, {16});
  EXPECT_FALSE(c.valid());
  EXPECT_NE(c.validation_error().find("inner"), std::string::npos);
}

TEST(ChainValidation, NamesOffendingField) {
  const ChainSpec zero_batch("b", 0, 8, {16, 16});
  EXPECT_FALSE(zero_batch.valid());
  EXPECT_NE(zero_batch.validation_error().find("batch"), std::string::npos);

  const ChainSpec neg_m("m", 1, -4, {16, 16});
  EXPECT_FALSE(neg_m.valid());
  EXPECT_NE(neg_m.validation_error().find("m must be >= 1"), std::string::npos);

  const ChainSpec zero_inner("i", 1, 8, {16, 0, 16});
  EXPECT_FALSE(zero_inner.valid());
  EXPECT_NE(zero_inner.validation_error().find("inner[1]"), std::string::npos);

  const ChainSpec too_long("l", 1, 8, {8, 8, 8, 8, 8, 8, 8, 8});
  EXPECT_FALSE(too_long.valid());
  EXPECT_NE(too_long.validation_error().find("too many"), std::string::npos);
}

TEST(ChainValidation, ValidChainHasNoError) {
  const ChainSpec c = ChainSpec::gemm_chain("ok", 2, 128, 96, 64, 80);
  EXPECT_TRUE(c.valid());
  EXPECT_TRUE(c.validation_error().empty());
}

TEST(ChainValidation, InvalidChainShapeAccessorsStaySafe) {
  // Digest/shape accessors must not throw on invalid chains (the engine
  // computes dedup digests before validation verdicts are consumed).
  const ChainSpec c("bad", 1, 8, {16, 0, 16});
  EXPECT_EQ(c.num_ops(), 2);
  EXPECT_EQ(c.epilogue(0), Epilogue::None);
  EXPECT_EQ(c.epilogue(1), Epilogue::None);
  EXPECT_FALSE(c.to_string().empty());
}

TEST(ChainDeathTest, SearchSpaceOnInvalidChainDies) {
  // Layers below the engine still fail fast on programming errors.
  const ChainSpec c("bad", 0, 8, {16, 16});
  EXPECT_DEATH(SearchSpace(c, SpaceOptions{}, PruneOptions{}),
               "invalid chain");
}

}  // namespace
}  // namespace mcf
