#include "ir/expr.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mcf {
namespace {

ChainSpec paper_chain() {
  return ChainSpec::gemm_chain("ex", 1, 1024, 1024, 512, 512);
}

TEST(Expr, DeepExpressionBindsSpatialLoops) {
  const ChainSpec c = paper_chain();
  const TileExpr e = make_deep_expr(c, {0, 3, 2, 1});  // mhnk
  EXPECT_EQ(e.block_loops(), (std::vector<int>{0, 3}));
  EXPECT_EQ(e.tree_loops(), (std::vector<int>{2, 1}));  // n(k)
  EXPECT_TRUE(e.is_deep());
}

TEST(Expr, DeepInteriorSpatialAlsoBound) {
  const ChainSpec c = paper_chain();
  // mnkh: h is innermost yet still bound to blockIdx (paper Rule 1:
  // mhnk and mnkh share sub-expression nk).
  const TileExpr e = make_deep_expr(c, {0, 2, 1, 3});
  EXPECT_EQ(e.tree_loops(), (std::vector<int>{2, 1}));
}

TEST(Expr, Rule1EquivalenceOfMhnkAndMnkh) {
  const ChainSpec c = paper_chain();
  const TileExpr a = make_deep_expr(c, {0, 3, 2, 1});  // mhnk
  const TileExpr b = make_deep_expr(c, {0, 2, 1, 3});  // mnkh
  EXPECT_EQ(a.structure_key(), b.structure_key());
}

TEST(Expr, DifferentReductionOrderDiffers) {
  const ChainSpec c = paper_chain();
  const TileExpr nk = make_deep_expr(c, {0, 3, 2, 1});
  const TileExpr kn = make_deep_expr(c, {0, 3, 1, 2});
  EXPECT_NE(nk.structure_key(), kn.structure_key());
}

TEST(Expr, FlatExpressionShape) {
  const ChainSpec c = paper_chain();
  const TileExpr e = make_flat_expr(c, {0, 2}, {1, 3});  // mn(k,h)
  EXPECT_FALSE(e.is_deep());
  EXPECT_EQ(e.block_loops(), (std::vector<int>{0}));  // only m bindable
  // Tree: n with sequential children k and h.
  const int n_node = e.find_loop(2);
  ASSERT_GE(n_node, 0);
  EXPECT_EQ(e.node(n_node).children.size(), 2u);
}

TEST(Expr, FlatPrintingMatchesPaperNotation) {
  const ChainSpec c = paper_chain();
  const TileExpr e = make_flat_expr(c, {0, 2}, {1, 3});
  EXPECT_EQ(e.to_string(c), "[m]n(k,h)");
}

TEST(Expr, DeepPrinting) {
  const ChainSpec c = paper_chain();
  const TileExpr e = make_deep_expr(c, {0, 3, 2, 1});
  EXPECT_EQ(e.to_string(c), "[mh]nk");
}

TEST(Expr, EnumerationCountsMatchPaper) {
  // Paper Fig. 3: 24 deep + 2 flat tilings for the 2-GEMM chain.
  const ChainSpec c = paper_chain();
  const RawExpressions raw = enumerate_expressions(c);
  EXPECT_EQ(raw.deep.size(), 24u);
  EXPECT_EQ(raw.flat.size(), 2u);
  EXPECT_EQ(raw.total(), 26u);
}

TEST(Expr, EnumerationThreeOpChain) {
  const ChainSpec c("triple", 1, 64, {32, 48, 16, 24});
  const RawExpressions raw = enumerate_expressions(c);
  EXPECT_EQ(raw.deep.size(), 120u);  // 5! permutations
  // Flat: perms of shared loops {m, n, h} = 6.
  EXPECT_EQ(raw.flat.size(), 6u);
}

TEST(Expr, PathAndAncestors) {
  const ChainSpec c = paper_chain();
  const TileExpr e = make_deep_expr(c, {0, 3, 2, 1});
  const int n_node = e.find_loop(2);
  const int k_node = e.find_loop(1);
  EXPECT_TRUE(e.is_ancestor(n_node, k_node));
  EXPECT_FALSE(e.is_ancestor(k_node, n_node));
  EXPECT_EQ(e.path_from_root(k_node).size(), 3u);  // root, n, k
}

TEST(Expr, DepthOfDeepAndFlat) {
  const ChainSpec c = paper_chain();
  EXPECT_EQ(make_deep_expr(c, {0, 3, 2, 1}).depth(), 2);  // n -> k
  EXPECT_EQ(make_flat_expr(c, {0, 2}, {1, 3}).depth(), 2);  // n -> (k|h)
}

TEST(Expr, FindLoopAbsentReturnsMinusOne) {
  const ChainSpec c = paper_chain();
  const TileExpr e = make_deep_expr(c, {0, 3, 2, 1});
  EXPECT_EQ(e.find_loop(0), -1);  // m is block-bound
  EXPECT_EQ(e.find_loop(3), -1);  // h is block-bound
}

TEST(Expr, StructureKeysOfAllDeepExpressionsCollapse) {
  // With all spatial loops bound, 24 deep orders collapse to 4 classes
  // (n/k order x blockIdx binding order) — the paper reports 5 total
  // with the single flat class.
  const ChainSpec c = paper_chain();
  const RawExpressions raw = enumerate_expressions(c);
  std::set<std::string> keys;
  for (const auto& e : raw.deep) keys.insert(e.structure_key());
  EXPECT_EQ(keys.size(), 4u);
  for (const auto& e : raw.flat) keys.insert(e.structure_key());
  EXPECT_EQ(keys.size(), 5u);
}

}  // namespace
}  // namespace mcf
