// Bit-identical regression pin for the engine refactor: MCFuser::fuse()
// (now a thin wrapper over FusionEngine) must reproduce the pre-engine
// implementation exactly on the fig7 workload family — best tile vector,
// best expression, best measured time (exact double compare), tuning
// measurement count and the full prune funnel.  The golden values below
// were captured from the pre-refactor tree (commit 52d3639) with the
// default options on a100().
#include <gtest/gtest.h>

#include <vector>

#include "engine/engine.hpp"
#include "search/mcfuser.hpp"

namespace mcf {
namespace {

struct Golden {
  const char* name;
  int expr_id;
  std::vector<std::int64_t> tiles;
  double best_time_s;
  int measurements;
  int generations;
  double funnel[5];  // original, after_rule1..4
  std::size_t space_size;
};

// Captured pre-PR (see header comment); do NOT regenerate these from a
// tree that already contains the engine — that would defeat the pin.
const std::vector<Golden>& golden() {
  static const std::vector<Golden> kGolden = {
      {"fig7-mini", 0, {16, 64, 32, 16}, 5.1145922738498446e-06, 16, 3,
       {26624, 5120, 3584, 528, 528}, 528},
      {"fig7-mini-wide", 0, {16, 32, 64, 16}, 4.9812108136980898e-06, 15, 3,
       {13312, 2560, 2048, 320, 320}, 320},
      {"fig7-mini-attn", 1, {16, 32, 32, 16}, 4.8843710782450023e-06, 15, 3,
       {1664, 320, 256, 144, 144}, 144},
      {"fig7", 2, {32, 512, 32, 256}, 4.5120054682183073e-05, 37, 3,
       {109051904, 20971520, 12845056, 5880, 2262}, 2262},
  };
  return kGolden;
}

ChainSpec chain_for(const std::string& name) {
  if (name == "fig7-mini") return ChainSpec::gemm_chain("fig7-mini", 1, 128, 128, 64, 64);
  if (name == "fig7-mini-wide") return ChainSpec::gemm_chain("fig7-mini-wide", 1, 256, 128, 32, 32);
  if (name == "fig7-mini-attn") return ChainSpec::attention("fig7-mini-attn", 2, 64, 64, 32, 32);
  return ChainSpec::gemm_chain("fig7", 1, 1024, 1024, 512, 512);
}

void expect_matches(const FusionResult& r, const Golden& g) {
  ASSERT_TRUE(r.ok()) << g.name << ": " << r.reason;
  EXPECT_EQ(r.tuned.best.expr_id, g.expr_id) << g.name;
  ASSERT_EQ(r.tuned.best.tiles.size(), g.tiles.size()) << g.name;
  for (std::size_t i = 0; i < g.tiles.size(); ++i) {
    EXPECT_EQ(r.tuned.best.tiles[i], g.tiles[i]) << g.name << " tile " << i;
  }
  // Exact compare: "bit-identical" is the contract, not "close".
  EXPECT_EQ(r.tuned.best_time_s, g.best_time_s) << g.name;
  EXPECT_EQ(r.tuned.stats.measurements, g.measurements) << g.name;
  EXPECT_EQ(r.tuned.stats.generations, g.generations) << g.name;
  EXPECT_EQ(r.funnel.original, g.funnel[0]) << g.name;
  EXPECT_EQ(r.funnel.after_rule1, g.funnel[1]) << g.name;
  EXPECT_EQ(r.funnel.after_rule2, g.funnel[2]) << g.name;
  EXPECT_EQ(r.funnel.after_rule3, g.funnel[3]) << g.name;
  EXPECT_EQ(r.funnel.after_rule4, g.funnel[4]) << g.name;
  EXPECT_EQ(r.space_size, g.space_size) << g.name;
}

TEST(EngineRegression, MCFuserWrapperBitIdenticalToPrePR) {
  const GpuSpec gpu = a100();
  const MCFuser fuser(gpu);
  for (const Golden& g : golden()) {
    expect_matches(fuser.fuse(chain_for(g.name)), g);
  }
}

TEST(EngineRegression, EngineFuseBitIdenticalToPrePR) {
  const GpuSpec gpu = a100();
  const FusionEngine engine(gpu);
  for (const Golden& g : golden()) {
    expect_matches(engine.fuse(chain_for(g.name)), g);
  }
}

TEST(EngineRegression, AsyncSubmitMatchesSynchronousFuse) {
  const GpuSpec gpu = a100();
  FusionEngineOptions opts;
  opts.jobs = 2;
  FusionEngine engine(gpu, opts);
  std::vector<FusionTicket> tickets;
  for (const Golden& g : golden()) {
    if (std::string(g.name) == "fig7") continue;  // keep the test fast
    tickets.push_back(engine.submit(chain_for(g.name)));
  }
  std::size_t i = 0;
  for (const Golden& g : golden()) {
    if (std::string(g.name) == "fig7") continue;
    expect_matches(tickets[i++].get(), g);
  }
}

}  // namespace
}  // namespace mcf
