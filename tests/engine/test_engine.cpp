// FusionEngine unit tests: the FusionStatus taxonomy (every failure layer
// mapped and carrying a reason), ticket lifecycle (submit / ready / wait /
// progress / cancel), deterministic results under concurrent submission,
// admission control (bounded queue, overflow policies, deadlines), the
// shutdown drain, and a many-producer stress suite (the ASan/UBSan CI
// config exercises all the threading).
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "measure/backend.hpp"

namespace mcf {
namespace {

ChainSpec small_chain(const std::string& name = "q") {
  return ChainSpec::gemm_chain(name, 2, 128, 96, 64, 80);
}

/// Small search budget: admission/stress tests care about queue
/// mechanics, not search quality.
FusionEngineOptions cheap_options() {
  FusionEngineOptions o;
  o.tuner.population = 16;
  o.tuner.topk = 2;
  o.tuner.min_generations = 1;
  o.tuner.max_generations = 2;
  return o;
}

/// Backend whose measure() blocks until release(): deterministic control
/// over worker occupancy (a "running" job stays running exactly as long
/// as the test needs).
class GatedBackend : public MeasureBackend {
 public:
  explicit GatedBackend(GpuSpec spec) : sim_(std::move(spec)) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "gated"; }
  [[nodiscard]] const GpuSpec& spec() const noexcept override { return sim_.spec(); }
  [[nodiscard]] bool deterministic() const noexcept override { return true; }

  [[nodiscard]] KernelMeasurement measure(
      const Schedule& s, const MeasureOptions& options) const override {
    {
      std::unique_lock<std::mutex> lk(mu_);
      entered_ = true;
      cv_.notify_all();
      cv_.wait(lk, [&] { return open_; });
    }
    return sim_.measure(s, options);
  }
  [[nodiscard]] KernelMeasurement measure_raw(
      double bytes, double flops, std::int64_t n_blocks,
      std::int64_t smem_bytes, double mem_eff, double comp_eff,
      double stmt_trips, const MeasureOptions& options) const override {
    return sim_.measure_raw(bytes, flops, n_blocks, smem_bytes, mem_eff,
                            comp_eff, stmt_trips, options);
  }

  /// Blocks until some measure() call is inside the gate (the job
  /// holding it is provably running, not queued).
  void wait_entered() const {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return entered_; });
  }
  /// Timed variant: false when nothing entered within `seconds` (tests
  /// that could otherwise hang use this and skip instead).
  [[nodiscard]] bool wait_entered_for(double seconds) const {
    std::unique_lock<std::mutex> lk(mu_);
    return cv_.wait_for(lk, std::chrono::duration<double>(seconds),
                        [&] { return entered_; });
  }
  void release() const {
    std::lock_guard<std::mutex> lk(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  TimingSimulator sim_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable bool entered_ = false;
  mutable bool open_ = false;
};

/// Backend whose every measurement fails — drives the MeasureFailed path.
class FailingBackend : public MeasureBackend {
 public:
  explicit FailingBackend(GpuSpec spec) : sim_(std::move(spec)) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "failing"; }
  [[nodiscard]] const GpuSpec& spec() const noexcept override { return sim_.spec(); }
  [[nodiscard]] bool deterministic() const noexcept override { return true; }
  [[nodiscard]] KernelMeasurement measure(
      const Schedule&, const MeasureOptions&) const override {
    KernelMeasurement m;
    m.ok = false;
    m.fail_reason = "injected backend failure";
    return m;
  }
  [[nodiscard]] KernelMeasurement measure_raw(
      double bytes, double flops, std::int64_t n_blocks,
      std::int64_t smem_bytes, double mem_eff, double comp_eff,
      double stmt_trips, const MeasureOptions& options) const override {
    return sim_.measure_raw(bytes, flops, n_blocks, smem_bytes, mem_eff,
                            comp_eff, stmt_trips, options);
  }

 private:
  TimingSimulator sim_;
};

TEST(FusionStatusTest, NamesAreStable) {
  EXPECT_STREQ(fusion_status_name(FusionStatus::Ok), "ok");
  EXPECT_STREQ(fusion_status_name(FusionStatus::InvalidChain), "invalid-chain");
  EXPECT_STREQ(fusion_status_name(FusionStatus::InfeasibleSpace),
               "infeasible-space");
  EXPECT_STREQ(fusion_status_name(FusionStatus::PruneEmpty), "prune-empty");
  EXPECT_STREQ(fusion_status_name(FusionStatus::MeasureFailed),
               "measure-failed");
  EXPECT_STREQ(fusion_status_name(FusionStatus::Cancelled), "cancelled");
  EXPECT_STREQ(fusion_status_name(FusionStatus::Rejected), "rejected");
  EXPECT_STREQ(fusion_status_name(FusionStatus::DeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(overflow_policy_name(OverflowPolicy::Reject), "reject");
  EXPECT_STREQ(overflow_policy_name(OverflowPolicy::Block), "block");
  EXPECT_STREQ(overflow_policy_name(OverflowPolicy::ReplaceOldest),
               "replace-oldest");
}

TEST(FusionEngineTest, FusesAndReportsOk) {
  const FusionEngine engine(a100());
  const FusionResult r = engine.fuse(small_chain());
  EXPECT_EQ(r.status, FusionStatus::Ok);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.reason.empty());
  ASSERT_TRUE(r.kernel.has_value());
  EXPECT_GT(r.time_s(), 0.0);
}

TEST(FusionEngineTest, InvalidChainNamesOffendingField) {
  const FusionEngine engine(a100());
  const FusionResult r = engine.fuse(ChainSpec("bad", 0, 128, {64, 64}));
  EXPECT_EQ(r.status, FusionStatus::InvalidChain);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.reason.find("batch"), std::string::npos) << r.reason;

  const FusionResult r2 = engine.fuse(ChainSpec("bad2", 1, 128, {64, -3}));
  EXPECT_EQ(r2.status, FusionStatus::InvalidChain);
  EXPECT_NE(r2.reason.find("inner[1]"), std::string::npos) << r2.reason;
}

TEST(FusionEngineTest, InfeasibleSpaceWhenNoExpressions) {
  FusionEngineOptions opts;
  opts.space.include_flat = false;
  opts.space.include_deep = false;  // no tiling expressions at all
  const FusionEngine engine(a100(), opts);
  const FusionResult r = engine.fuse(small_chain());
  EXPECT_EQ(r.status, FusionStatus::InfeasibleSpace);
  EXPECT_FALSE(r.reason.empty());
}

TEST(FusionEngineTest, PruneEmptyCarriesFunnel) {
  // A GPU with essentially no shared memory: rule 4 prunes everything.
  GpuSpec tiny = a100();
  tiny.name = "tiny-smem";
  tiny.smem_per_block = 16;
  const FusionEngine engine(tiny);
  const FusionResult r = engine.fuse(small_chain());
  EXPECT_EQ(r.status, FusionStatus::PruneEmpty);
  EXPECT_GT(r.funnel.original, 0.0);
  EXPECT_EQ(r.space_size, 0u);
  EXPECT_NE(r.reason.find("pruning left 0"), std::string::npos) << r.reason;
}

TEST(FusionEngineTest, MeasureFailedCarriesBackendReason) {
  FusionEngineOptions opts;
  opts.tuner.backend = std::make_shared<FailingBackend>(a100());
  const FusionEngine engine(a100(), opts);
  const FusionResult r = engine.fuse(small_chain());
  EXPECT_EQ(r.status, FusionStatus::MeasureFailed);
  EXPECT_NE(r.reason.find("injected backend failure"), std::string::npos)
      << r.reason;
}

TEST(FusionEngineTest, PreCancelledProgressYieldsCancelled) {
  const FusionEngine engine(a100());
  auto progress = std::make_shared<TuningProgress>();
  progress->request_cancel();
  const FusionResult r = engine.fuse(small_chain(), progress);
  EXPECT_EQ(r.status, FusionStatus::Cancelled);
  EXPECT_FALSE(r.reason.empty());
}

TEST(FusionTicketTest, EmptyTicketIsInert) {
  FusionTicket t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.ready());
  EXPECT_FALSE(t.cancel());
  const FusionTicket::Progress p = t.progress();
  EXPECT_FALSE(p.started);
  EXPECT_FALSE(p.done);
}

TEST(FusionTicketTest, SubmitWaitReadyAndProgress) {
  FusionEngineOptions opts;
  opts.jobs = 1;
  FusionEngine engine(a100(), opts);
  FusionTicket t = engine.submit(small_chain("async"));
  ASSERT_TRUE(t.valid());
  EXPECT_EQ(t.chain().name(), "async");
  t.wait();
  EXPECT_TRUE(t.ready());
  EXPECT_TRUE(t.wait_for(0.0));
  const FusionResult& r = t.get();
  EXPECT_EQ(r.status, FusionStatus::Ok);
  const FusionTicket::Progress p = t.progress();
  EXPECT_TRUE(p.started);
  EXPECT_TRUE(p.done);
  // Counters mirror the tuner's stats.
  EXPECT_EQ(p.generations, r.tuned.stats.generations);
  EXPECT_EQ(p.measurements, r.tuned.stats.measurements);
  EXPECT_EQ(p.estimates, r.tuned.stats.estimates);
  EXPECT_GT(p.measurements, 0);
}

TEST(FusionTicketTest, CancelQueuedJob) {
  FusionEngineOptions opts;
  opts.jobs = 1;  // one worker: the second submission must queue
  FusionEngine engine(a100(), opts);
  // Occupy the only worker with a deliberately large chain, then cancel a
  // queued job.  Even if the worker reaches the second job first, the
  // cancel lands within its first tuning generation — either way the
  // result must be Cancelled.
  FusionTicket busy =
      engine.submit(ChainSpec::gemm_chain("busy", 1, 1024, 1024, 512, 512));
  FusionTicket victim =
      engine.submit(ChainSpec::gemm_chain("victim", 1, 1024, 1024, 512, 512));
  EXPECT_TRUE(victim.cancel());
  const FusionResult& r = victim.get();
  EXPECT_EQ(r.status, FusionStatus::Cancelled);
  EXPECT_FALSE(r.reason.empty());
  // The occupied job is unaffected.
  EXPECT_EQ(busy.get().status, FusionStatus::Ok);
}

TEST(FusionTicketTest, CancelAfterCompletionReturnsFalseAndKeepsResult) {
  FusionEngineOptions opts;
  opts.jobs = 1;
  FusionEngine engine(a100(), opts);
  FusionTicket t = engine.submit(small_chain());
  t.wait();
  const FusionResult before = t.get();
  ASSERT_EQ(before.status, FusionStatus::Ok);
  // A finished job is untouchable: cancel() reports false and the stored
  // result is bit-identical afterwards.
  EXPECT_FALSE(t.cancel());
  const FusionResult& after = t.get();
  EXPECT_EQ(after.status, FusionStatus::Ok);
  EXPECT_EQ(after.tuned.best_time_s, before.tuned.best_time_s);
  EXPECT_EQ(after.tuned.best.tiles, before.tuned.best.tiles);
  EXPECT_EQ(after.reason, before.reason);
  // Double-cancel on a finished job stays false, stays a no-op.
  EXPECT_FALSE(t.cancel());
  EXPECT_EQ(t.get().status, FusionStatus::Ok);
}

TEST(FusionTicketTest, DoubleCancelBeforeCompletionIsIdempotent) {
  FusionEngineOptions opts = cheap_options();
  opts.jobs = 1;
  auto gated = std::make_shared<GatedBackend>(a100());
  opts.tuner.backend = gated;
  FusionEngine engine(a100(), opts);
  FusionTicket busy = engine.submit(small_chain("busy"));
  gated->wait_entered();
  FusionTicket victim = engine.submit(small_chain("victim"));
  // Both cancels land before the queued job finishes: both register.
  EXPECT_TRUE(victim.cancel());
  EXPECT_TRUE(victim.cancel());
  gated->release();
  EXPECT_EQ(victim.get().status, FusionStatus::Cancelled);
  EXPECT_EQ(busy.get().status, FusionStatus::Ok);
  // ... and cancelling the now-finished job flips to false.
  EXPECT_FALSE(victim.cancel());
  EXPECT_EQ(victim.get().status, FusionStatus::Cancelled);
}

TEST(FusionTicketTest, WaitForDegenerateInputsContract) {
  FusionEngineOptions opts = cheap_options();
  opts.jobs = 1;
  auto gated = std::make_shared<GatedBackend>(a100());
  opts.tuner.backend = gated;
  FusionEngine engine(a100(), opts);
  FusionTicket t = engine.submit(small_chain("slow"));
  gated->wait_entered();
  // Unfinished job: <= 0, NaN and tiny waits all answer false (and the
  // non-positive/NaN cases poll without sleeping).
  EXPECT_FALSE(t.wait_for(0.0));
  EXPECT_FALSE(t.wait_for(-1.0));
  EXPECT_FALSE(t.wait_for(-std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(t.wait_for(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(t.wait_for(1e-6));
  gated->release();
  // +inf must behave like wait() (not overflow the clock arithmetic).
  EXPECT_TRUE(t.wait_for(std::numeric_limits<double>::infinity()));
  // Finished job: every spelling reports completion immediately.
  EXPECT_TRUE(t.wait_for(0.0));
  EXPECT_TRUE(t.wait_for(-3.0));
  EXPECT_TRUE(t.wait_for(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_TRUE(t.wait_for(std::numeric_limits<double>::max()));
  EXPECT_EQ(t.get().status, FusionStatus::Ok);
}

TEST(FusionEngineTest, ConcurrentSubmissionsMatchSynchronousResults) {
  // The acceptance gate for --jobs scaling: N distinct chains submitted
  // at once across 4 workers produce exactly the results the synchronous
  // path produces (per-chain determinism is independent of concurrency).
  const GpuSpec gpu = a100();
  std::vector<ChainSpec> chains;
  for (int i = 0; i < 6; ++i) {
    chains.push_back(ChainSpec::gemm_chain("c" + std::to_string(i), 1,
                                           128 + 32 * i, 96, 64, 64));
  }
  const FusionEngine serial(gpu);
  std::vector<FusionResult> expected;
  for (const ChainSpec& c : chains) expected.push_back(serial.fuse(c));

  FusionEngineOptions opts;
  opts.jobs = 4;
  FusionEngine engine(gpu, opts);
  std::vector<FusionTicket> tickets;
  for (const ChainSpec& c : chains) tickets.push_back(engine.submit(c));
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const FusionResult& got = tickets[i].get();
    ASSERT_EQ(got.status, expected[i].status) << chains[i].name();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.tuned.best.expr_id, expected[i].tuned.best.expr_id);
    EXPECT_EQ(got.tuned.best_time_s, expected[i].tuned.best_time_s);
    EXPECT_EQ(got.tuned.stats.measurements,
              expected[i].tuned.stats.measurements);
  }
}

// ---- admission control ------------------------------------------------------

TEST(FusionEngineAdmission, RejectPolicyShedsWhenQueueFull) {
  FusionEngineOptions opts = cheap_options();
  opts.jobs = 1;
  opts.queue.max_queued = 1;  // one waiting job max
  opts.queue.overflow = OverflowPolicy::Reject;
  auto gated = std::make_shared<GatedBackend>(a100());
  opts.tuner.backend = gated;
  FusionEngine engine(a100(), opts);

  FusionTicket busy = engine.submit(small_chain("busy"));
  gated->wait_entered();  // the only worker is provably occupied
  FusionTicket queued = engine.submit(small_chain("queued"));
  FusionTicket shed = engine.submit(small_chain("shed"));
  // The shed ticket is valid and already terminal — no waiting involved.
  ASSERT_TRUE(shed.valid());
  EXPECT_TRUE(shed.ready());
  EXPECT_EQ(shed.get().status, FusionStatus::Rejected);
  EXPECT_NE(shed.get().reason.find("admission queue full"), std::string::npos)
      << shed.get().reason;
  EXPECT_FALSE(shed.progress().started);

  FusionTicket tried = engine.try_submit(small_chain("tried"));
  EXPECT_EQ(tried.get().status, FusionStatus::Rejected);

  gated->release();
  EXPECT_EQ(busy.get().status, FusionStatus::Ok);
  EXPECT_EQ(queued.get().status, FusionStatus::Ok);

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.submitted, 4u);
  EXPECT_EQ(s.rejected, 2u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.cancelled + s.deadline_exceeded, 0u);
}

TEST(FusionEngineAdmission, MaxInFlightCountsRunningJobs) {
  FusionEngineOptions opts = cheap_options();
  opts.jobs = 1;
  opts.queue.max_in_flight = 1;  // the running job IS the capacity
  opts.queue.overflow = OverflowPolicy::Reject;
  auto gated = std::make_shared<GatedBackend>(a100());
  opts.tuner.backend = gated;
  FusionEngine engine(a100(), opts);

  FusionTicket busy = engine.submit(small_chain("busy"));
  gated->wait_entered();
  // Queue is empty, but queued + running == 1 >= max_in_flight.
  FusionTicket shed = engine.submit(small_chain("shed"));
  EXPECT_EQ(shed.get().status, FusionStatus::Rejected);
  gated->release();
  EXPECT_EQ(busy.get().status, FusionStatus::Ok);
}

TEST(FusionEngineAdmission, ReplaceOldestEvictsTheOldestQueuedJob) {
  FusionEngineOptions opts = cheap_options();
  opts.jobs = 1;
  opts.queue.max_queued = 1;
  opts.queue.overflow = OverflowPolicy::ReplaceOldest;
  auto gated = std::make_shared<GatedBackend>(a100());
  opts.tuner.backend = gated;
  FusionEngine engine(a100(), opts);

  FusionTicket busy = engine.submit(small_chain("busy"));
  gated->wait_entered();
  FusionTicket oldest = engine.submit(small_chain("oldest"));
  FusionTicket newest = engine.submit(small_chain("newest"));
  // The newcomer displaced the oldest queued job, which resolves as
  // Rejected immediately (its waiters never hang on a job nobody runs).
  EXPECT_TRUE(oldest.ready());
  EXPECT_EQ(oldest.get().status, FusionStatus::Rejected);
  EXPECT_NE(oldest.get().reason.find("replaced"), std::string::npos)
      << oldest.get().reason;
  gated->release();
  EXPECT_EQ(busy.get().status, FusionStatus::Ok);
  EXPECT_EQ(newest.get().status, FusionStatus::Ok);

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.submitted, 3u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.completed, 2u);
}

TEST(FusionEngineAdmission, QueueWaitDeadlineShedsWithoutTuning) {
  FusionEngineOptions opts = cheap_options();
  opts.jobs = 1;
  opts.queue.deadline_s = 0.5;
  auto gated = std::make_shared<GatedBackend>(a100());
  opts.tuner.backend = gated;
  FusionEngine engine(a100(), opts);

  FusionTicket busy = engine.submit(small_chain("busy"));
  // The deadline is engine-wide, so on a pathologically loaded machine
  // even 'busy' could be shed before reaching the gate; skip rather
  // than hang on the gate forever.
  if (!gated->wait_entered_for(60.0)) {
    gated->release();
    ASSERT_EQ(busy.get().status, FusionStatus::DeadlineExceeded);
    GTEST_SKIP() << "machine too loaded to start a job within 0.5s";
  }
  FusionTicket victim = engine.submit(small_chain("victim"));
  // Hold the worker past the victim's queue-wait deadline.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  gated->release();
  EXPECT_EQ(busy.get().status, FusionStatus::Ok);
  const FusionResult& r = victim.get();
  EXPECT_EQ(r.status, FusionStatus::DeadlineExceeded);
  EXPECT_NE(r.reason.find("deadline"), std::string::npos) << r.reason;
  // Shed at pick-up: the job never started, never measured.
  const FusionTicket::Progress p = victim.progress();
  EXPECT_FALSE(p.started);
  EXPECT_EQ(p.measurements, 0);
  EXPECT_EQ(engine.stats().deadline_exceeded, 1u);
}

TEST(FusionEngineAdmission, GenerousDeadlineDoesNotShed) {
  // 1000s: a real (far) deadline.  1e12s: past the clock-arithmetic
  // overflow guard, treated as "no deadline" (UBSan would flag the
  // naive duration_cast).
  for (const double deadline : {1000.0, 1e12}) {
    FusionEngineOptions opts = cheap_options();
    opts.jobs = 1;
    opts.queue.deadline_s = deadline;
    FusionEngine engine(a100(), opts);
    FusionTicket t = engine.submit(small_chain("fine"));
    EXPECT_EQ(t.get().status, FusionStatus::Ok) << deadline;
    EXPECT_EQ(engine.stats().deadline_exceeded, 0u) << deadline;
  }
}

TEST(FusionEngineTest, DestructionResolvesQueuedTicketsAsCancelled) {
  auto gated = std::make_shared<GatedBackend>(a100());
  std::vector<FusionTicket> tickets;
  std::thread releaser;
  {
    FusionEngineOptions opts = cheap_options();
    opts.jobs = 1;
    opts.tuner.backend = gated;
    FusionEngine engine(a100(), opts);
    tickets.push_back(engine.submit(small_chain("busy")));
    gated->wait_entered();
    for (int i = 0; i < 3; ++i) {
      tickets.push_back(engine.submit(small_chain("q" + std::to_string(i))));
    }
    // The destructor below sets stop_ first, THEN the releaser lets the
    // running job finish — so the backlog is provably drained under
    // shutdown, not raced to completion.
    releaser = std::thread([gated] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      gated->release();
    });
  }  // ~FusionEngine: must resolve every outstanding ticket, never hang
  releaser.join();
  // The running job completed normally; the queued backlog resolved as
  // Cancelled without starting.  Ticket state outlives the engine (the
  // ASan CI config turns any use-after-free here into a failure).
  ASSERT_EQ(tickets.size(), 4u);
  EXPECT_TRUE(tickets[0].ready());
  EXPECT_EQ(tickets[0].get().status, FusionStatus::Ok);
  for (std::size_t i = 1; i < tickets.size(); ++i) {
    EXPECT_TRUE(tickets[i].ready()) << i;
    const FusionResult& r = tickets[i].get();
    EXPECT_EQ(r.status, FusionStatus::Cancelled) << i;
    EXPECT_NE(r.reason.find("shutting down"), std::string::npos) << r.reason;
    EXPECT_FALSE(tickets[i].progress().started) << i;
  }
}

TEST(FusionEngineTest, DestructionUnblocksBlockPolicySubmitters) {
  // A submitter blocked on a full queue under the Block policy must be
  // woken by engine destruction, resolve its ticket as Cancelled, and
  // never touch the dead engine (the ASan CI config gates the latter).
  auto gated = std::make_shared<GatedBackend>(a100());
  FusionTicket blocked_ticket;
  std::vector<FusionTicket> tickets;
  std::thread blocked_submitter;
  std::thread releaser;
  {
    FusionEngineOptions opts = cheap_options();
    opts.jobs = 1;
    opts.queue.max_queued = 1;
    opts.queue.overflow = OverflowPolicy::Block;
    opts.tuner.backend = gated;
    FusionEngine engine(a100(), opts);
    tickets.push_back(engine.submit(small_chain("busy")));
    gated->wait_entered();
    tickets.push_back(engine.submit(small_chain("queued")));  // queue now full
    blocked_submitter = std::thread([&] {
      blocked_ticket = engine.submit(small_chain("blocked"));
    });
    // Positive handshake: stats().admitting counts admission calls in
    // progress, and the only one left is the blocked submitter — once
    // it shows up it has provably passed the shutdown check, so the
    // destructor below cannot trip it into an MCF_CHECK abort.
    while (engine.stats().admitting == 0) {
      std::this_thread::yield();
    }
    releaser = std::thread([gated] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      gated->release();
    });
  }  // ~FusionEngine: waits for the woken submitter to leave admit()
  blocked_submitter.join();
  releaser.join();
  EXPECT_EQ(tickets[0].get().status, FusionStatus::Ok);  // ran to completion
  EXPECT_EQ(tickets[1].get().status, FusionStatus::Cancelled);
  ASSERT_TRUE(blocked_ticket.valid());
  const FusionResult& r = blocked_ticket.get();
  EXPECT_EQ(r.status, FusionStatus::Cancelled);
  EXPECT_NE(r.reason.find("shutting down"), std::string::npos) << r.reason;
}

// ---- stress: many producers vs a tiny bounded queue -------------------------

TEST(FusionEngineStress, ManyProducersTinyQueueEveryTicketResolvesOnce) {
  FusionEngineOptions opts = cheap_options();
  opts.jobs = 2;
  opts.queue.max_queued = 2;
  opts.queue.overflow = OverflowPolicy::Reject;
  FusionEngine engine(a100(), opts);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::vector<FusionTicket>> tickets(kThreads);
  // Queue-bound watchdog: samples stats() concurrently with the flood.
  std::atomic<bool> done{false};
  std::atomic<std::size_t> max_queued_seen{0};
  std::thread sampler([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const EngineStats s = engine.stats();
      std::size_t prev = max_queued_seen.load(std::memory_order_relaxed);
      while (s.queued > prev &&
             !max_queued_seen.compare_exchange_weak(prev, s.queued)) {
      }
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ChainSpec c = ChainSpec::gemm_chain(
            "s" + std::to_string(t) + "_" + std::to_string(i), 1,
            64 + 16 * (i % 4), 64, 32, 32);
        tickets[static_cast<std::size_t>(t)].push_back(
            (i % 2 == 0) ? engine.submit(std::move(c))
                         : engine.try_submit(std::move(c)));
      }
    });
  }
  for (std::thread& p : producers) p.join();

  int ok = 0;
  int rejected = 0;
  int other = 0;
  for (const auto& per_thread : tickets) {
    for (const FusionTicket& t : per_thread) {
      const FusionResult& r = t.get();  // must never hang (ctest TIMEOUT)
      switch (r.status) {
        case FusionStatus::Ok:
          ++ok;
          break;
        case FusionStatus::Rejected:
          ++rejected;
          EXPECT_FALSE(r.reason.empty());
          break;
        default:
          ++other;  // no Cancelled/DeadlineExceeded configured here
          break;
      }
    }
  }
  done.store(true, std::memory_order_relaxed);
  sampler.join();

  constexpr int kTotal = kThreads * kPerThread;
  EXPECT_EQ(ok + rejected, kTotal);
  EXPECT_EQ(other, 0);
  EXPECT_GT(ok, 0);        // the queue made progress
  EXPECT_GT(rejected, 0);  // ... and genuinely shed load
  EXPECT_LE(max_queued_seen.load(), opts.queue.max_queued);

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(s.completed + s.rejected + s.cancelled + s.deadline_exceeded,
            s.submitted);
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(ok));
  EXPECT_EQ(s.rejected, static_cast<std::uint64_t>(rejected));
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.busy, 0u);
}

TEST(FusionEngineStress, BlockPolicyCompletesEverythingWithinBounds) {
  FusionEngineOptions opts = cheap_options();
  opts.jobs = 2;
  opts.queue.max_queued = 1;
  opts.queue.overflow = OverflowPolicy::Block;
  FusionEngine engine(a100(), opts);

  constexpr int kThreads = 3;
  constexpr int kPerThread = 4;
  std::vector<std::vector<FusionTicket>> tickets(kThreads);
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tickets[static_cast<std::size_t>(t)].push_back(engine.submit(
            ChainSpec::gemm_chain("b" + std::to_string(t) + "_" +
                                      std::to_string(i),
                                  1, 64 + 16 * (i % 3), 64, 32, 32)));
      }
    });
  }
  for (std::thread& p : producers) p.join();
  for (const auto& per_thread : tickets) {
    for (const FusionTicket& t : per_thread) {
      EXPECT_EQ(t.get().status, FusionStatus::Ok) << t.chain().name();
    }
  }
  const EngineStats s = engine.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.completed, s.submitted);  // Block never sheds
  EXPECT_EQ(s.rejected, 0u);
}

TEST(FusionEngineTest, FuseCachedHitSkipsTuning) {
  const FusionEngine engine(a100());
  TuningCache cache;
  const FusionResult first = engine.fuse_cached(small_chain(), cache);
  ASSERT_EQ(first.status, FusionStatus::Ok);
  EXPECT_GT(first.tuned.stats.measurements, 0);
  const FusionResult second = engine.fuse_cached(small_chain(), cache);
  ASSERT_EQ(second.status, FusionStatus::Ok);
  EXPECT_EQ(second.tuned.stats.measurements, 0);  // zero tuning on a hit
  EXPECT_EQ(second.tuned.best.tiles, first.tuned.best.tiles);
}

}  // namespace
}  // namespace mcf
