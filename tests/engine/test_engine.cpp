// FusionEngine unit tests: the FusionStatus taxonomy (every failure layer
// mapped and carrying a reason), ticket lifecycle (submit / ready / wait /
// progress / cancel), and deterministic results under concurrent
// submission (the ASan/UBSan CI config exercises the threading).
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "measure/backend.hpp"

namespace mcf {
namespace {

ChainSpec small_chain(const std::string& name = "q") {
  return ChainSpec::gemm_chain(name, 2, 128, 96, 64, 80);
}

/// Backend whose every measurement fails — drives the MeasureFailed path.
class FailingBackend : public MeasureBackend {
 public:
  explicit FailingBackend(GpuSpec spec) : sim_(std::move(spec)) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "failing"; }
  [[nodiscard]] const GpuSpec& spec() const noexcept override { return sim_.spec(); }
  [[nodiscard]] bool deterministic() const noexcept override { return true; }
  [[nodiscard]] KernelMeasurement measure(
      const Schedule&, const MeasureOptions&) const override {
    KernelMeasurement m;
    m.ok = false;
    m.fail_reason = "injected backend failure";
    return m;
  }
  [[nodiscard]] KernelMeasurement measure_raw(
      double bytes, double flops, std::int64_t n_blocks,
      std::int64_t smem_bytes, double mem_eff, double comp_eff,
      double stmt_trips, const MeasureOptions& options) const override {
    return sim_.measure_raw(bytes, flops, n_blocks, smem_bytes, mem_eff,
                            comp_eff, stmt_trips, options);
  }

 private:
  TimingSimulator sim_;
};

TEST(FusionStatusTest, NamesAreStable) {
  EXPECT_STREQ(fusion_status_name(FusionStatus::Ok), "ok");
  EXPECT_STREQ(fusion_status_name(FusionStatus::InvalidChain), "invalid-chain");
  EXPECT_STREQ(fusion_status_name(FusionStatus::InfeasibleSpace),
               "infeasible-space");
  EXPECT_STREQ(fusion_status_name(FusionStatus::PruneEmpty), "prune-empty");
  EXPECT_STREQ(fusion_status_name(FusionStatus::MeasureFailed),
               "measure-failed");
  EXPECT_STREQ(fusion_status_name(FusionStatus::Cancelled), "cancelled");
}

TEST(FusionEngineTest, FusesAndReportsOk) {
  const FusionEngine engine(a100());
  const FusionResult r = engine.fuse(small_chain());
  EXPECT_EQ(r.status, FusionStatus::Ok);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.reason.empty());
  ASSERT_TRUE(r.kernel.has_value());
  EXPECT_GT(r.time_s(), 0.0);
}

TEST(FusionEngineTest, InvalidChainNamesOffendingField) {
  const FusionEngine engine(a100());
  const FusionResult r = engine.fuse(ChainSpec("bad", 0, 128, {64, 64}));
  EXPECT_EQ(r.status, FusionStatus::InvalidChain);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.reason.find("batch"), std::string::npos) << r.reason;

  const FusionResult r2 = engine.fuse(ChainSpec("bad2", 1, 128, {64, -3}));
  EXPECT_EQ(r2.status, FusionStatus::InvalidChain);
  EXPECT_NE(r2.reason.find("inner[1]"), std::string::npos) << r2.reason;
}

TEST(FusionEngineTest, InfeasibleSpaceWhenNoExpressions) {
  FusionEngineOptions opts;
  opts.space.include_flat = false;
  opts.space.include_deep = false;  // no tiling expressions at all
  const FusionEngine engine(a100(), opts);
  const FusionResult r = engine.fuse(small_chain());
  EXPECT_EQ(r.status, FusionStatus::InfeasibleSpace);
  EXPECT_FALSE(r.reason.empty());
}

TEST(FusionEngineTest, PruneEmptyCarriesFunnel) {
  // A GPU with essentially no shared memory: rule 4 prunes everything.
  GpuSpec tiny = a100();
  tiny.name = "tiny-smem";
  tiny.smem_per_block = 16;
  const FusionEngine engine(tiny);
  const FusionResult r = engine.fuse(small_chain());
  EXPECT_EQ(r.status, FusionStatus::PruneEmpty);
  EXPECT_GT(r.funnel.original, 0.0);
  EXPECT_EQ(r.space_size, 0u);
  EXPECT_NE(r.reason.find("pruning left 0"), std::string::npos) << r.reason;
}

TEST(FusionEngineTest, MeasureFailedCarriesBackendReason) {
  FusionEngineOptions opts;
  opts.tuner.backend = std::make_shared<FailingBackend>(a100());
  const FusionEngine engine(a100(), opts);
  const FusionResult r = engine.fuse(small_chain());
  EXPECT_EQ(r.status, FusionStatus::MeasureFailed);
  EXPECT_NE(r.reason.find("injected backend failure"), std::string::npos)
      << r.reason;
}

TEST(FusionEngineTest, PreCancelledProgressYieldsCancelled) {
  const FusionEngine engine(a100());
  auto progress = std::make_shared<TuningProgress>();
  progress->request_cancel();
  const FusionResult r = engine.fuse(small_chain(), progress);
  EXPECT_EQ(r.status, FusionStatus::Cancelled);
  EXPECT_FALSE(r.reason.empty());
}

TEST(FusionTicketTest, EmptyTicketIsInert) {
  FusionTicket t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.ready());
  EXPECT_FALSE(t.cancel());
  const FusionTicket::Progress p = t.progress();
  EXPECT_FALSE(p.started);
  EXPECT_FALSE(p.done);
}

TEST(FusionTicketTest, SubmitWaitReadyAndProgress) {
  FusionEngineOptions opts;
  opts.jobs = 1;
  FusionEngine engine(a100(), opts);
  FusionTicket t = engine.submit(small_chain("async"));
  ASSERT_TRUE(t.valid());
  EXPECT_EQ(t.chain().name(), "async");
  t.wait();
  EXPECT_TRUE(t.ready());
  EXPECT_TRUE(t.wait_for(0.0));
  const FusionResult& r = t.get();
  EXPECT_EQ(r.status, FusionStatus::Ok);
  const FusionTicket::Progress p = t.progress();
  EXPECT_TRUE(p.started);
  EXPECT_TRUE(p.done);
  // Counters mirror the tuner's stats.
  EXPECT_EQ(p.generations, r.tuned.stats.generations);
  EXPECT_EQ(p.measurements, r.tuned.stats.measurements);
  EXPECT_EQ(p.estimates, r.tuned.stats.estimates);
  EXPECT_GT(p.measurements, 0);
}

TEST(FusionTicketTest, CancelQueuedJob) {
  FusionEngineOptions opts;
  opts.jobs = 1;  // one worker: the second submission must queue
  FusionEngine engine(a100(), opts);
  // Occupy the only worker with a deliberately large chain, then cancel a
  // queued job.  Even if the worker reaches the second job first, the
  // cancel lands within its first tuning generation — either way the
  // result must be Cancelled.
  FusionTicket busy =
      engine.submit(ChainSpec::gemm_chain("busy", 1, 1024, 1024, 512, 512));
  FusionTicket victim =
      engine.submit(ChainSpec::gemm_chain("victim", 1, 1024, 1024, 512, 512));
  EXPECT_TRUE(victim.cancel());
  const FusionResult& r = victim.get();
  EXPECT_EQ(r.status, FusionStatus::Cancelled);
  EXPECT_FALSE(r.reason.empty());
  // The occupied job is unaffected.
  EXPECT_EQ(busy.get().status, FusionStatus::Ok);
}

TEST(FusionTicketTest, CancelAfterCompletionReturnsFalse) {
  FusionEngineOptions opts;
  opts.jobs = 1;
  FusionEngine engine(a100(), opts);
  FusionTicket t = engine.submit(small_chain());
  t.wait();
  EXPECT_FALSE(t.cancel());
  EXPECT_EQ(t.get().status, FusionStatus::Ok);
}

TEST(FusionEngineTest, ConcurrentSubmissionsMatchSynchronousResults) {
  // The acceptance gate for --jobs scaling: N distinct chains submitted
  // at once across 4 workers produce exactly the results the synchronous
  // path produces (per-chain determinism is independent of concurrency).
  const GpuSpec gpu = a100();
  std::vector<ChainSpec> chains;
  for (int i = 0; i < 6; ++i) {
    chains.push_back(ChainSpec::gemm_chain("c" + std::to_string(i), 1,
                                           128 + 32 * i, 96, 64, 64));
  }
  const FusionEngine serial(gpu);
  std::vector<FusionResult> expected;
  for (const ChainSpec& c : chains) expected.push_back(serial.fuse(c));

  FusionEngineOptions opts;
  opts.jobs = 4;
  FusionEngine engine(gpu, opts);
  std::vector<FusionTicket> tickets;
  for (const ChainSpec& c : chains) tickets.push_back(engine.submit(c));
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const FusionResult& got = tickets[i].get();
    ASSERT_EQ(got.status, expected[i].status) << chains[i].name();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.tuned.best.expr_id, expected[i].tuned.best.expr_id);
    EXPECT_EQ(got.tuned.best_time_s, expected[i].tuned.best_time_s);
    EXPECT_EQ(got.tuned.stats.measurements,
              expected[i].tuned.stats.measurements);
  }
}

TEST(FusionEngineTest, FuseCachedHitSkipsTuning) {
  const FusionEngine engine(a100());
  TuningCache cache;
  const FusionResult first = engine.fuse_cached(small_chain(), cache);
  ASSERT_EQ(first.status, FusionStatus::Ok);
  EXPECT_GT(first.tuned.stats.measurements, 0);
  const FusionResult second = engine.fuse_cached(small_chain(), cache);
  ASSERT_EQ(second.status, FusionStatus::Ok);
  EXPECT_EQ(second.tuned.stats.measurements, 0);  // zero tuning on a hit
  EXPECT_EQ(second.tuned.best.tiles, first.tuned.best.tiles);
}

}  // namespace
}  // namespace mcf
