// Graph-level batch fusion: digest dedup (N structurally identical chains
// tune exactly once — asserted via a measure-call counter on the backend),
// result reuse across fuse_graph calls, concurrent tuning of distinct
// chains, and the GraphFusionReport/JSON shape.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "graph/bert.hpp"
#include "graph/mixer.hpp"
#include "measure/backend.hpp"

namespace mcf {
namespace {

/// Decorator that counts measure() calls into the wrapped backend.
class CountingBackend : public MeasureBackend {
 public:
  explicit CountingBackend(std::shared_ptr<MeasureBackend> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "counting"; }
  [[nodiscard]] const GpuSpec& spec() const noexcept override { return inner_->spec(); }
  [[nodiscard]] bool deterministic() const noexcept override {
    return inner_->deterministic();
  }
  [[nodiscard]] KernelMeasurement measure(
      const Schedule& s, const MeasureOptions& options) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return inner_->measure(s, options);
  }
  [[nodiscard]] KernelMeasurement measure_raw(
      double bytes, double flops, std::int64_t n_blocks,
      std::int64_t smem_bytes, double mem_eff, double comp_eff,
      double stmt_trips, const MeasureOptions& options) const override {
    return inner_->measure_raw(bytes, flops, n_blocks, smem_bytes, mem_eff,
                               comp_eff, stmt_trips, options);
  }
  [[nodiscard]] int calls() const noexcept {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<MeasureBackend> inner_;
  mutable std::atomic<int> calls_{0};
};

std::vector<ChainSpec> replicated_chains(int n) {
  std::vector<ChainSpec> chains;
  for (int i = 0; i < n; ++i) {
    // Different names, identical structure: the digest must unify them
    // (graph builders name per-layer chains differently).
    chains.push_back(
        ChainSpec::attention("layer" + std::to_string(i), 4, 128, 128, 64, 64));
  }
  return chains;
}

TEST(FuseGraph, DedupTunesIdenticalChainsExactlyOnce) {
  const GpuSpec gpu = a100();
  constexpr int kCopies = 6;

  // Reference: measure-call cost of tuning this chain once.
  auto single_counter =
      std::make_shared<CountingBackend>(std::make_shared<SimulatorBackend>(gpu));
  {
    FusionEngineOptions opts;
    opts.tuner.backend = single_counter;
    const FusionEngine one(gpu, opts);
    ASSERT_TRUE(one.fuse(replicated_chains(1).front()).ok());
  }
  ASSERT_GT(single_counter->calls(), 0);

  auto counter =
      std::make_shared<CountingBackend>(std::make_shared<SimulatorBackend>(gpu));
  FusionEngineOptions opts;
  opts.tuner.backend = counter;
  opts.jobs = 2;
  FusionEngine engine(gpu, opts);
  const GraphFusionReport rep =
      engine.fuse_chains(replicated_chains(kCopies), "replicated");

  EXPECT_TRUE(rep.all_ok());
  EXPECT_EQ(rep.distinct_chains, 1);
  EXPECT_EQ(rep.tuned_chains, 1);
  ASSERT_EQ(rep.chains.size(), 1u);
  EXPECT_EQ(rep.chains[0].occurrences, kCopies);
  EXPECT_FALSE(rep.chains[0].reused);
  ASSERT_EQ(rep.sub_to_chain.size(), static_cast<std::size_t>(kCopies));
  for (const int idx : rep.sub_to_chain) EXPECT_EQ(idx, 0);
  // The headline assertion: N identical chains cost exactly one tuning
  // run's worth of backend measurements (plus nothing per duplicate).
  EXPECT_EQ(counter->calls(), single_counter->calls());
  EXPECT_EQ(rep.total_measurements, rep.chains[0].result->tuned.stats.measurements);
  // All N subgraphs share the one result object.
  for (const int idx : rep.sub_to_chain) {
    EXPECT_EQ(rep.chains[static_cast<std::size_t>(idx)].result.get(),
              rep.chains[0].result.get());
  }
}

TEST(FuseGraph, EngineMemoMakesSecondCallFree) {
  const GpuSpec gpu = a100();
  auto counter =
      std::make_shared<CountingBackend>(std::make_shared<SimulatorBackend>(gpu));
  FusionEngineOptions opts;
  opts.tuner.backend = counter;
  FusionEngine engine(gpu, opts);

  const GraphFusionReport first =
      engine.fuse_chains(replicated_chains(3), "first");
  EXPECT_EQ(first.tuned_chains, 1);
  const int calls_after_first = counter->calls();
  ASSERT_GT(calls_after_first, 0);

  const GraphFusionReport second =
      engine.fuse_chains(replicated_chains(5), "second");
  EXPECT_TRUE(second.all_ok());
  EXPECT_EQ(second.tuned_chains, 0);
  EXPECT_EQ(second.total_measurements, 0);
  ASSERT_EQ(second.chains.size(), 1u);
  EXPECT_TRUE(second.chains[0].reused);
  EXPECT_EQ(counter->calls(), calls_after_first);  // zero new measurements
  EXPECT_EQ(engine.result_cache_size(), 1u);
}

TEST(FuseGraph, DistinctChainsAllTunedConcurrently) {
  const GpuSpec gpu = a100();
  std::vector<ChainSpec> chains;
  for (int i = 0; i < 4; ++i) {
    chains.push_back(ChainSpec::gemm_chain("g" + std::to_string(i), 1,
                                           128 + 64 * i, 96, 64, 64));
    chains.push_back(ChainSpec::gemm_chain("g" + std::to_string(i) + "_dup", 1,
                                           128 + 64 * i, 96, 64, 64));
  }
  FusionEngineOptions opts;
  opts.jobs = 4;
  FusionEngine engine(gpu, opts);
  const GraphFusionReport rep = engine.fuse_chains(chains, "mixed");
  EXPECT_TRUE(rep.all_ok());
  EXPECT_EQ(rep.distinct_chains, 4);
  EXPECT_EQ(rep.tuned_chains, 4);
  for (const GraphChainReport& c : rep.chains) EXPECT_EQ(c.occurrences, 2);

  // Deduped results equal a synchronous engine's results exactly.
  const FusionEngine serial(gpu);
  for (std::size_t i = 0; i < chains.size(); i += 2) {
    const FusionResult expect = serial.fuse(chains[i]);
    const auto& got =
        *rep.chains[static_cast<std::size_t>(rep.sub_to_chain[i])].result;
    EXPECT_EQ(got.tuned.best_time_s, expect.tuned.best_time_s)
        << chains[i].name();
    EXPECT_EQ(got.tuned.best.tiles, expect.tuned.best.tiles);
  }
}

TEST(FuseGraph, BertGraphDedupsToOneAttentionChain) {
  const GpuSpec gpu = a100();
  FusionEngine engine(gpu);
  const NetGraph g = build_bert(bert_base());  // 12 identical layers
  const GraphFusionReport rep = engine.fuse_graph(g);
  EXPECT_TRUE(rep.all_ok());
  EXPECT_EQ(rep.graph_name, g.name());
  EXPECT_EQ(rep.graph_nodes, g.size());
  EXPECT_EQ(rep.mbci_subgraphs, 12);
  EXPECT_EQ(rep.distinct_chains, 1);
  EXPECT_EQ(rep.tuned_chains, 1);
  EXPECT_EQ(rep.chains[0].occurrences, 12);
}

TEST(FuseGraph, MemoEvictionRetunesBitIdenticallyAndReportsFresh) {
  const GpuSpec gpu = a100();
  FusionEngineOptions opts;
  opts.memo.max_entries = 2;
  FusionEngine engine(gpu, opts);

  const ChainSpec chain_a = ChainSpec::gemm_chain("a", 1, 128, 96, 64, 64);
  const GraphFusionReport first = engine.fuse_chains({chain_a}, "first");
  ASSERT_TRUE(first.all_ok());
  ASSERT_EQ(first.tuned_chains, 1);
  const FusionResult result_a = *first.chains[0].result;

  // Three more distinct digests through a 2-entry memo: A (the least
  // recently used) must fall out.
  const GraphFusionReport flood = engine.fuse_chains(
      {ChainSpec::gemm_chain("b", 1, 160, 96, 64, 64),
       ChainSpec::gemm_chain("c", 1, 192, 96, 64, 64),
       ChainSpec::gemm_chain("d", 1, 224, 96, 64, 64)},
      "flood");
  ASSERT_TRUE(flood.all_ok());
  EXPECT_LE(engine.result_cache_size(), 2u);
  EXPECT_GT(engine.stats().memo_evictions, 0u);

  // The evicted digest re-tunes (fresh, not memo) and the re-tuned
  // result is bit-identical — eviction is a cost, never a behaviour
  // change — and from_cache/reused reporting stays accurate.
  const GraphFusionReport second = engine.fuse_chains({chain_a}, "second");
  ASSERT_TRUE(second.all_ok());
  EXPECT_EQ(second.tuned_chains, 1);
  EXPECT_FALSE(second.chains[0].reused);
  EXPECT_GT(second.total_measurements, 0);
  const FusionResult& retuned = *second.chains[0].result;
  EXPECT_EQ(retuned.tuned.best.expr_id, result_a.tuned.best.expr_id);
  EXPECT_EQ(retuned.tuned.best.tiles, result_a.tuned.best.tiles);
  EXPECT_EQ(retuned.tuned.best_time_s, result_a.tuned.best_time_s);
  EXPECT_EQ(retuned.tuned.stats.measurements, result_a.tuned.stats.measurements);

  // ... and a third call is a memo hit again (A is now the hottest).
  const GraphFusionReport third = engine.fuse_chains({chain_a}, "third");
  EXPECT_EQ(third.tuned_chains, 0);
  EXPECT_TRUE(third.chains[0].reused);
}

TEST(FuseGraph, LruRecencyProtectsRecentlyReusedDigests) {
  const GpuSpec gpu = a100();
  FusionEngineOptions opts;
  opts.memo.max_entries = 2;
  FusionEngine engine(gpu, opts);
  const ChainSpec chain_a = ChainSpec::gemm_chain("a", 1, 128, 96, 64, 64);
  const ChainSpec chain_b = ChainSpec::gemm_chain("b", 1, 160, 96, 64, 64);
  ASSERT_TRUE(engine.fuse_chains({chain_a, chain_b}, "seed").all_ok());
  // Touch A (memo hit refreshes recency), then add a third digest: B —
  // not A — must be the eviction victim.
  EXPECT_EQ(engine.fuse_chains({chain_a}, "touch").tuned_chains, 0);
  ASSERT_TRUE(
      engine
          .fuse_chains({ChainSpec::gemm_chain("c", 1, 192, 96, 64, 64)}, "new")
          .all_ok());
  EXPECT_EQ(engine.fuse_chains({chain_a}, "probe-a").tuned_chains, 0);
  EXPECT_EQ(engine.fuse_chains({chain_b}, "probe-b").tuned_chains, 1);
}

TEST(FuseGraph, MemoByteCapBoundsMemoizedBytes) {
  const GpuSpec gpu = a100();
  FusionEngineOptions opts;
  opts.memo.max_bytes = 1;  // degenerate: at most the newest entry stays
  FusionEngine engine(gpu, opts);
  ASSERT_TRUE(engine
                  .fuse_chains({ChainSpec::gemm_chain("a", 1, 128, 96, 64, 64),
                                ChainSpec::gemm_chain("b", 1, 160, 96, 64, 64)},
                               "bytes")
                  .all_ok());
  // The newest entry is never evicted, so exactly one survives.
  EXPECT_EQ(engine.result_cache_size(), 1u);
  const EngineStats s = engine.stats();
  EXPECT_EQ(s.memo_entries, 1u);
  EXPECT_GT(s.memo_bytes, 0u);
  EXPECT_GE(s.memo_evictions, 1u);
}

TEST(FuseGraph, ReportJsonHasExpectedFields) {
  const GpuSpec gpu = a100();
  FusionEngine engine(gpu);
  const GraphFusionReport rep =
      engine.fuse_chains(replicated_chains(2), "jsontest");
  const std::string json = rep.to_json();
  for (const char* key :
       {"\"graph\":\"jsontest\"", "\"distinct_chains\":1", "\"tuned_chains\":1",
        "\"occurrences\":2", "\"status\":\"ok\"", "\"best_tiles\":[",
        "\"sub_to_chain\":[0,0]", "\"jit_compile\":{\"tus_compiled\":",
        "\"engine\":{\"queued\":", "\"submitted\":", "\"rejected\":",
        "\"memo_entries\":1", "\"memo_evictions\":0"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  // The simulator backend never jit-compiles: the economy counters are
  // present but all-zero on this engine.
  EXPECT_EQ(rep.jit_compile.tus_compiled, 0);
  EXPECT_EQ(rep.jit_compile.kernels_compiled, 0);
}

TEST(FuseGraph, DifferentSoftmaxScalesGetDistinctDigests) {
  // Same shape, different softmax scale => different computed kernel, so
  // the dedup digest must separate them (chain_cache_key carries the
  // scale for softmax chains).
  const GpuSpec gpu = a100();
  FusionEngine engine(gpu);
  const std::vector<Epilogue> epi = {Epilogue::OnlineSoftmax, Epilogue::None};
  std::vector<ChainSpec> chains = {
      ChainSpec("a", 4, 128, {64, 128, 64}, epi, 0.5f),
      ChainSpec("b", 4, 128, {64, 128, 64}, epi, 0.125f)};
  EXPECT_NE(chain_cache_key(chains[0]), chain_cache_key(chains[1]));
  const GraphFusionReport rep = engine.fuse_chains(chains, "scales");
  EXPECT_TRUE(rep.all_ok());
  EXPECT_EQ(rep.distinct_chains, 2);
  EXPECT_EQ(rep.tuned_chains, 2);
}

TEST(FuseGraph, EmptyChainListYieldsEmptyReport) {
  FusionEngine engine(a100());
  const GraphFusionReport rep = engine.fuse_chains({}, "empty");
  EXPECT_TRUE(rep.all_ok());
  EXPECT_EQ(rep.distinct_chains, 0);
  EXPECT_EQ(rep.tuned_chains, 0);
  EXPECT_TRUE(rep.chains.empty());
}

TEST(FuseGraph, InvalidChainReportedNotAborted) {
  FusionEngine engine(a100());
  std::vector<ChainSpec> chains = {ChainSpec("bad", 0, 128, {64, 64}),
                                   ChainSpec::gemm_chain("ok", 1, 128, 96, 64, 64)};
  const GraphFusionReport rep = engine.fuse_chains(chains, "partial");
  EXPECT_FALSE(rep.all_ok());
  ASSERT_EQ(rep.chains.size(), 2u);
  EXPECT_EQ(rep.chains[0].result->status, FusionStatus::InvalidChain);
  EXPECT_EQ(rep.chains[1].result->status, FusionStatus::Ok);
  // Failures are never memoized: only the Ok digest enters the memo, and
  // a repeat call re-runs the failed chain instead of replaying it.
  EXPECT_EQ(engine.result_cache_size(), 1u);
  const GraphFusionReport again = engine.fuse_chains(chains, "partial2");
  EXPECT_EQ(again.chains[0].result->status, FusionStatus::InvalidChain);
  EXPECT_FALSE(again.chains[0].reused);
  EXPECT_TRUE(again.chains[1].reused);
}

}  // namespace
}  // namespace mcf
