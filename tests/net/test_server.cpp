// net::FusionServer chaos suite — the protocol-abuse and lifecycle
// tests the hardened front-end is built around.  Every scenario asserts
// two things: the abusive peer gets a structured answer (or a clean
// close), and the server stays fully serviceable afterwards.  The
// drain tests additionally pin the EngineStats accounting identity
// (submitted == completed + rejected + cancelled + deadline_exceeded)
// through a SIGTERM-style stop() in the middle of a flood.
//
// Runs in all three CI lanes (Release, ASan/UBSan, TSan) — everything
// here is sim-backend, no fork, no dlopen.
#include "net/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "gtest/gtest.h"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "support/framing.hpp"

namespace mcf {
namespace net {
namespace {

using framing::Deadline;
using framing::IoStatus;

ChainSpec small_chain(const std::string& name = "net") {
  return ChainSpec::gemm_chain(name, 2, 128, 96, 64, 80);
}

/// Small search budget: these tests exercise the socket layer, not
/// search quality.
FusionEngineOptions cheap_options() {
  FusionEngineOptions o;
  o.tuner.population = 16;
  o.tuner.topk = 2;
  o.tuner.min_generations = 1;
  o.tuner.max_generations = 2;
  return o;
}

/// A unique short Unix-socket path (sun_path is ~108 bytes, so /tmp).
std::string fresh_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/mcf-test-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// Server + engine with tight-but-serviceable timeouts for tests.
struct TestService {
  explicit TestService(ServerOptions opt = {},
                       FusionEngineOptions eopt = cheap_options())
      : engine(gpu_by_name("a100"), eopt) {
    if (opt.unix_path.empty() && opt.tcp_port < 0) {
      opt.unix_path = fresh_socket_path();
    }
    opt.drain_deadline_s = 5.0;
    server = std::make_unique<FusionServer>(engine, opt);
    std::string err;
    started = server->start(&err);
    EXPECT_TRUE(started) << err;
  }
  ~TestService() {
    server->stop();
    check_identity();
  }
  void check_identity() {
    const EngineStats st = engine.stats();
    EXPECT_EQ(st.submitted,
              st.completed + st.rejected + st.cancelled + st.deadline_exceeded)
        << "accounting identity broken: submitted=" << st.submitted
        << " completed=" << st.completed << " rejected=" << st.rejected
        << " cancelled=" << st.cancelled
        << " deadline_exceeded=" << st.deadline_exceeded;
  }
  [[nodiscard]] std::string endpoint() const {
    return server->options().unix_path.empty()
               ? "127.0.0.1:" + std::to_string(server->port())
               : server->options().unix_path;
  }
  [[nodiscard]] ClientOptions client_options() const {
    ClientOptions c;
    c.connect_timeout_s = 5.0;
    c.io_timeout_s = 10.0;
    c.max_retries = 0;
    return c;
  }

  FusionEngine engine;
  std::unique_ptr<FusionServer> server;
  bool started = false;
};

/// A raw blocking socket to the server's unix path — the abusive peer.
struct RawConn {
  int fd = -1;
  explicit RawConn(const std::string& path) { open(path); }
  // gtest ASSERTs need a void function; the ctor delegates.
  void open(const std::string& path) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    ASSERT_LT(path.size(), sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0)
        << std::strerror(errno);
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  void send(const void* data, std::size_t n) const {
    ASSERT_EQ(framing::write_all(fd, data, n, nullptr), IoStatus::Ok);
  }
  void send(const std::string& bytes) const { send(bytes.data(), bytes.size()); }
  /// Reads one frame; Timeout after 10s means the server went mute.
  IoStatus read_frame(std::string* payload) const {
    const Deadline dl = framing::deadline_after(10.0);
    return framing::read_frame(fd, payload,
                               framing::default_max_frame_bytes(), &dl);
  }
  /// Expects a structured Error frame with the given code.
  void expect_error(ErrorCode code) const {
    std::string payload;
    ASSERT_EQ(read_frame(&payload), IoStatus::Ok);
    MsgType type{};
    ASSERT_EQ(decode_header(payload, &type), HeaderStatus::Ok);
    ASSERT_EQ(type, MsgType::Error);
    ErrorMsg err;
    ASSERT_TRUE(decode_error(payload, &err));
    EXPECT_EQ(err.code, code) << err.detail;
    EXPECT_FALSE(err.detail.empty());
  }
};

// ---- happy paths ------------------------------------------------------------

TEST(NetServer, UnixRoundTrip) {
  TestService svc;
  FusionClient client(svc.endpoint(), svc.client_options());
  const RpcResult res = client.fuse(small_chain());
  ASSERT_EQ(res.status, RpcStatus::Ok) << res.detail;
  EXPECT_EQ(res.attempts, 1);
  EXPECT_EQ(static_cast<FusionStatus>(res.response.status), FusionStatus::Ok)
      << res.response.reason;
  EXPECT_GT(res.response.time_s, 0.0);
  EXPECT_NE(res.response.json.find("\"status\""), std::string::npos);
}

TEST(NetServer, TcpEphemeralRoundTrip) {
  ServerOptions opt;
  opt.tcp_port = 0;  // ephemeral
  TestService svc(opt);
  ASSERT_GT(svc.server->port(), 0);
  FusionClient client(svc.endpoint(), svc.client_options());
  const RpcResult res = client.fuse(small_chain("tcp"));
  ASSERT_EQ(res.status, RpcStatus::Ok) << res.detail;
  EXPECT_EQ(static_cast<FusionStatus>(res.response.status), FusionStatus::Ok);
}

TEST(NetServer, StatsQueryReportsBothLayers) {
  TestService svc;
  FusionClient client(svc.endpoint(), svc.client_options());
  ASSERT_EQ(client.fuse(small_chain()).status, RpcStatus::Ok);
  std::string json;
  const RpcResult res = client.query_stats(&json);
  ASSERT_EQ(res.status, RpcStatus::Ok) << res.detail;
  EXPECT_NE(json.find("\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"server\""), std::string::npos);
  EXPECT_NE(json.find("\"submitted\""), std::string::npos);
}

TEST(NetServer, InvalidChainResolvesAsInvalidChainNotError) {
  TestService svc;
  FusionClient client(svc.endpoint(), svc.client_options());
  FuseRequest req;
  req.name = "bad";
  req.batch = -1;  // invalid geometry travels to the engine's taxonomy
  req.m = 128;
  req.inner = {64, 64, 64};
  const RpcResult res = client.fuse_request(req);
  ASSERT_EQ(res.status, RpcStatus::Ok) << res.detail;
  EXPECT_EQ(static_cast<FusionStatus>(res.response.status),
            FusionStatus::InvalidChain);
  EXPECT_FALSE(res.response.reason.empty());
}

// ---- protocol abuse ---------------------------------------------------------

TEST(NetServer, BadMagicGetsStructuredRefusal) {
  TestService svc;
  RawConn raw(svc.endpoint());
  framing::FrameWriter w;
  w.u32(0x51554143);  // not the MCFN magic
  w.u8(kProtocolVersion);
  w.u8(1);
  raw.send(w.framed());
  raw.expect_error(ErrorCode::BadMagic);
  // The server refused the peer but must stay fully serviceable.
  FusionClient client(svc.endpoint(), svc.client_options());
  EXPECT_EQ(client.fuse(small_chain()).status, RpcStatus::Ok);
  EXPECT_GE(svc.server->stats().protocol_errors, 1u);
}

TEST(NetServer, VersionMismatchIsRefusedNamingBothVersions) {
  TestService svc;
  RawConn raw(svc.endpoint());
  framing::FrameWriter w;
  w.u32(kMagic);
  w.u8(kProtocolVersion + 9);
  w.u8(static_cast<std::uint8_t>(MsgType::Hello));
  raw.send(w.framed());
  std::string payload;
  ASSERT_EQ(raw.read_frame(&payload), IoStatus::Ok);
  ErrorMsg err;
  ASSERT_TRUE(decode_error(payload, &err));
  EXPECT_EQ(err.code, ErrorCode::BadVersion);
  EXPECT_NE(err.detail.find("v1"), std::string::npos) << err.detail;
  EXPECT_NE(err.detail.find("v10"), std::string::npos) << err.detail;
  EXPECT_GE(svc.server->stats().version_mismatches, 1u);
  // A same-version client is still served.
  FusionClient client(svc.endpoint(), svc.client_options());
  EXPECT_EQ(client.fuse(small_chain()).status, RpcStatus::Ok);
}

TEST(NetServer, TruncatedPayloadIsBadFrame) {
  TestService svc;
  RawConn raw(svc.endpoint());
  // A 3-byte payload cannot even hold the header.
  framing::FrameWriter w;
  w.u8(1);
  w.u8(2);
  w.u8(3);
  raw.send(w.framed());
  raw.expect_error(ErrorCode::BadFrame);
}

TEST(NetServer, UnknownTypeIsRefused) {
  TestService svc;
  RawConn raw(svc.endpoint());
  framing::FrameWriter w;
  w.u32(kMagic);
  w.u8(kProtocolVersion);
  w.u8(0x50);  // unassigned type
  raw.send(w.framed());
  raw.expect_error(ErrorCode::UnknownType);
}

TEST(NetServer, OversizedFrameIsRefusedWithTheCapInTheDetail) {
  TestService svc;
  RawConn raw(svc.endpoint());
  // Announce a frame beyond the cap; send no body — the server must
  // refuse on the prefix alone, never allocate, never hang.
  const std::uint32_t huge =
      static_cast<std::uint32_t>(framing::default_max_frame_bytes()) + 1;
  raw.send(&huge, sizeof(huge));
  std::string payload;
  ASSERT_EQ(raw.read_frame(&payload), IoStatus::Ok);
  ErrorMsg err;
  ASSERT_TRUE(decode_error(payload, &err));
  EXPECT_EQ(err.code, ErrorCode::FrameTooLarge);
  EXPECT_NE(err.detail.find("frame too large"), std::string::npos)
      << err.detail;
  EXPECT_GE(svc.server->stats().oversized_frames, 1u);
  // ... and the server keeps serving well-formed peers.
  FusionClient client(svc.endpoint(), svc.client_options());
  EXPECT_EQ(client.fuse(small_chain()).status, RpcStatus::Ok);
}

TEST(NetServer, GarbageBodyAfterValidHeaderIsBadFrame) {
  TestService svc;
  RawConn raw(svc.endpoint());
  framing::FrameWriter w;
  w.u32(kMagic);
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(MsgType::FuseChain));
  w.u8(0xFF);  // not a decodable FuseChain body
  raw.send(w.framed());
  raw.expect_error(ErrorCode::BadFrame);
}

TEST(NetServer, SlowlorisIdleConnectionIsClosed) {
  ServerOptions opt;
  opt.unix_path = fresh_socket_path();
  opt.idle_timeout_s = 0.2;
  TestService svc(opt);
  RawConn raw(svc.endpoint());
  // Write nothing; within the idle budget the server must close us —
  // the read sees EOF rather than hanging for the 10s test deadline.
  std::string payload;
  EXPECT_EQ(raw.read_frame(&payload), IoStatus::Eof);
  EXPECT_GE(svc.server->stats().idle_closes, 1u);
}

TEST(NetServer, SlowlorisMidFrameHitsTheIoTimeout) {
  ServerOptions opt;
  opt.unix_path = fresh_socket_path();
  opt.io_timeout_s = 0.2;
  TestService svc(opt);
  RawConn raw(svc.endpoint());
  // First bytes of a frame, then silence: the per-frame budget closes
  // the connection; the accept loop keeps serving others meanwhile.
  const std::uint32_t len = 1000;
  raw.send(&len, sizeof(len));
  raw.send("ab", 2);
  std::string payload;
  EXPECT_EQ(raw.read_frame(&payload), IoStatus::Eof);
  EXPECT_GE(svc.server->stats().io_timeouts, 1u);
  FusionClient client(svc.endpoint(), svc.client_options());
  EXPECT_EQ(client.fuse(small_chain()).status, RpcStatus::Ok);
}

TEST(NetServer, MidRequestDisconnectDoesNotPoisonAccounting) {
  TestService svc;
  {
    RawConn raw(svc.endpoint());
    const FuseRequest req = request_from_chain(small_chain("bail"));
    raw.send(encode_fuse_request(req));
    // Disconnect immediately — the server still resolves the admitted
    // ticket (the response write just fails); ~TestService pins the
    // accounting identity.
  }
  FusionClient client(svc.endpoint(), svc.client_options());
  EXPECT_EQ(client.fuse(small_chain()).status, RpcStatus::Ok);
}

TEST(NetServer, ByteAtATimeRequestStillServed) {
  TestService svc;
  RawConn raw(svc.endpoint());
  const std::string frame = encode_hello();
  for (const char c : frame) {
    raw.send(&c, 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::string payload;
  ASSERT_EQ(raw.read_frame(&payload), IoStatus::Ok);
  MsgType type{};
  ASSERT_EQ(decode_header(payload, &type), HeaderStatus::Ok);
  EXPECT_EQ(type, MsgType::HelloAck);
  HelloAck ack;
  ASSERT_TRUE(decode_hello_ack(payload, &ack));
  EXPECT_GE(ack.max_frame_bytes, 4096u);
}

// ---- overload ---------------------------------------------------------------

TEST(NetServer, ConnectionCapShedsWithOverloaded) {
  ServerOptions opt;
  opt.unix_path = fresh_socket_path();
  opt.max_connections = 1;
  TestService svc(opt);
  RawConn occupant(svc.endpoint());  // holds the only slot
  ClientOptions copt = svc.client_options();
  copt.max_retries = 0;
  FusionClient client(svc.endpoint(), copt);
  const RpcResult res = client.fuse(small_chain());
  EXPECT_EQ(res.status, RpcStatus::Overloaded) << res.detail;
  EXPECT_GE(svc.server->stats().overload_sheds, 1u);
}

TEST(NetServer, EngineQueueOverflowShedsAsRejected) {
  FusionEngineOptions eopt = cheap_options();
  eopt.jobs = 1;
  eopt.queue.max_in_flight = 1;  // one running, zero waiting
  ServerOptions opt;
  opt.unix_path = fresh_socket_path();
  TestService svc(opt, eopt);

  constexpr int kClients = 8;
  std::atomic<int> ok{0}, rejected{0}, other{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      ClientOptions copt;
      copt.max_retries = 0;
      FusionClient client(svc.endpoint(), copt);
      const RpcResult res =
          client.fuse(small_chain("flood-" + std::to_string(i)));
      if (res.status != RpcStatus::Ok) {
        other.fetch_add(1);
        return;
      }
      const auto status = static_cast<FusionStatus>(res.response.status);
      if (status == FusionStatus::Ok) ok.fetch_add(1);
      else if (status == FusionStatus::Rejected) rejected.fetch_add(1);
      else other.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  // Every response resolved through the taxonomy: nothing crashed, and
  // with 8 concurrent one-slot requests at least one was shed.
  EXPECT_EQ(ok.load() + rejected.load() + other.load(), kClients);
  EXPECT_GE(ok.load(), 1);
  EXPECT_GE(rejected.load(), 1);
  EXPECT_EQ(other.load(), 0);
  svc.check_identity();
}

// ---- drain ------------------------------------------------------------------

TEST(NetServer, StopIsIdempotentAndRefusesNewWork) {
  TestService svc;
  const std::string endpoint = svc.endpoint();
  svc.server->stop();
  svc.server->stop();  // second stop is a no-op
  EXPECT_FALSE(svc.server->running());
  // The listener is gone: connects now fail (retried, then surfaced).
  ClientOptions copt = svc.client_options();
  copt.max_retries = 1;
  copt.backoff_initial_s = 0.01;
  FusionClient client(endpoint, copt);
  const RpcResult res = client.fuse(small_chain());
  EXPECT_EQ(res.status, RpcStatus::ConnectFailed);
  EXPECT_EQ(res.attempts, 2);  // connect-refused is retried
}

TEST(NetServer, DrainMidFloodKeepsTheAccountingIdentity) {
  FusionEngineOptions eopt = cheap_options();
  eopt.jobs = 2;
  eopt.queue.max_queued = 4;
  ServerOptions opt;
  opt.unix_path = fresh_socket_path();
  TestService svc(opt, eopt);

  constexpr int kClients = 6;
  std::atomic<bool> flood{true};
  std::atomic<int> sent{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      ClientOptions copt;
      copt.max_retries = 0;
      copt.io_timeout_s = 5.0;
      FusionClient client(svc.endpoint(), copt);
      int n = 0;
      while (flood.load(std::memory_order_relaxed) && n < 50) {
        // Any outcome is legal mid-drain (Ok result, Draining refusal,
        // connect failure once the listener is gone) — what must hold
        // is: no crash, and the identity after the join.
        (void)client.fuse(
            small_chain("drain-" + std::to_string(i) + "-" + std::to_string(n)));
        ++n;
        sent.fetch_add(1);
      }
    });
  }
  // Let the flood build up real in-flight work, then drain through it.
  while (sent.load() < kClients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  svc.server->stop();
  flood.store(false);
  for (std::thread& t : threads) t.join();

  EXPECT_FALSE(svc.server->running());
  svc.check_identity();
  const EngineStats st = svc.engine.stats();
  EXPECT_GT(st.submitted, 0u);
}

TEST(NetServer, StartFailsCleanlyOnUnbindablePath) {
  FusionEngine engine(gpu_by_name("a100"), cheap_options());
  ServerOptions opt;
  opt.unix_path = "/nonexistent-dir-mcf/x.sock";
  FusionServer server(engine, opt);
  std::string err;
  EXPECT_FALSE(server.start(&err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(server.running());
}

TEST(NetServer, StartRequiresAListener) {
  FusionEngine engine(gpu_by_name("a100"), cheap_options());
  FusionServer server(engine, ServerOptions{});  // no unix, no tcp
  std::string err;
  EXPECT_FALSE(server.start(&err));
  EXPECT_FALSE(err.empty());
}

// ---- client-side policy -----------------------------------------------------

TEST(NetClient, ConnectRefusedIsRetriedThenSurfaced) {
  ClientOptions copt;
  copt.max_retries = 2;
  copt.backoff_initial_s = 0.01;
  copt.backoff_max_s = 0.02;
  copt.connect_timeout_s = 1.0;
  FusionClient client(fresh_socket_path(), copt);  // nobody listening
  const RpcResult res = client.fuse(small_chain());
  EXPECT_EQ(res.status, RpcStatus::ConnectFailed);
  EXPECT_EQ(res.attempts, 3);  // 1 + 2 retries
  EXPECT_FALSE(res.detail.empty());
}

TEST(NetClient, RejectsNonLoopbackHosts) {
  ClientOptions copt;
  copt.max_retries = 0;
  FusionClient client("10.1.2.3:4444", copt);
  const RpcResult res = client.fuse(small_chain());
  EXPECT_EQ(res.status, RpcStatus::ConnectFailed);
  EXPECT_NE(res.detail.find("loopback"), std::string::npos) << res.detail;
}

TEST(NetClient, BackoffIsCappedAndJittered) {
  // White-box-ish: with retries against a dead endpoint the elapsed time
  // must reflect capped backoff (not exponential blow-up, not zero).
  ClientOptions copt;
  copt.max_retries = 3;
  copt.backoff_initial_s = 0.02;
  copt.backoff_max_s = 0.04;
  FusionClient client(fresh_socket_path(), copt);
  const auto t0 = std::chrono::steady_clock::now();
  const RpcResult res = client.fuse(small_chain());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(res.status, RpcStatus::ConnectFailed);
  EXPECT_EQ(res.attempts, 4);
  // 3 delays, each in [0.5, 1.0] x min(cap, initial*2^k): total within
  // [0.03, ~0.12] plus connect overhead; 2s is the generous ceiling.
  EXPECT_GE(elapsed, 0.03);
  EXPECT_LT(elapsed, 2.0);
}

}  // namespace
}  // namespace net
}  // namespace mcf
