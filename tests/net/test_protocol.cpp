// The MCFN wire protocol codec (net/protocol.hpp) — pure byte-level
// tests, no sockets.  Deterministic fuzz-style: every message type
// round-trips, every truncation prefix of every message fails cleanly,
// bad magic / bad version / lying counts are classified (never crash,
// never allocate from a hostile count).
#include "net/protocol.hpp"

#include <cstring>
#include <string>

#include "engine/status.hpp"
#include "gtest/gtest.h"
#include "support/framing.hpp"

namespace mcf {
namespace net {
namespace {

/// Strips the u32 length prefix from an encode_* result, leaving the
/// payload the server-side decoders consume.
std::string payload_of(const std::string& frame) {
  EXPECT_GE(frame.size(), 4u);
  return frame.substr(4);
}

FuseRequest sample_request() {
  FuseRequest req;
  req.id = 77;
  req.name = "attn";
  req.batch = 8;
  req.m = 512;
  req.inner = {64, 512, 64};
  req.epilogues = {static_cast<std::uint8_t>(Epilogue::OnlineSoftmax),
                   static_cast<std::uint8_t>(Epilogue::None)};
  req.softmax_scale = 0.125;
  req.timeout_s = 30.0;
  return req;
}

TEST(NetProtocol, HeaderRoundTripsForEveryType) {
  for (const std::string frame :
       {encode_hello(), encode_stats_query(),
        encode_fuse_request(sample_request()),
        encode_hello_ack({1 << 20, "srv"}), encode_stats_result("{}"),
        encode_error(ErrorCode::Draining, "bye", 3)}) {
    const std::string payload = payload_of(frame);
    MsgType type{};
    EXPECT_EQ(decode_header(payload, &type), HeaderStatus::Ok);
  }
}

TEST(NetProtocol, FuseRequestRoundTrips) {
  const FuseRequest req = sample_request();
  const std::string payload = payload_of(encode_fuse_request(req));
  FuseRequest out;
  std::string why;
  ASSERT_TRUE(decode_fuse_request(payload, &out, &why)) << why;
  EXPECT_EQ(out.id, req.id);
  EXPECT_EQ(out.name, req.name);
  EXPECT_EQ(out.batch, req.batch);
  EXPECT_EQ(out.m, req.m);
  EXPECT_EQ(out.inner, req.inner);
  EXPECT_EQ(out.epilogues, req.epilogues);
  EXPECT_EQ(out.softmax_scale, req.softmax_scale);
  EXPECT_EQ(out.timeout_s, req.timeout_s);
}

TEST(NetProtocol, FuseResponseRoundTrips) {
  FuseResponse resp;
  resp.id = 9;
  resp.status = static_cast<std::uint8_t>(FusionStatus::Rejected);
  resp.reason = "queue full";
  resp.time_s = 0.0025;
  resp.json = "{\"status\": \"rejected\"}";
  const std::string payload = payload_of(encode_fuse_response(resp));
  FuseResponse out;
  ASSERT_TRUE(decode_fuse_response(payload, &out));
  EXPECT_EQ(out.id, resp.id);
  EXPECT_EQ(out.status, resp.status);
  EXPECT_EQ(out.reason, resp.reason);
  EXPECT_EQ(out.time_s, resp.time_s);
  EXPECT_EQ(out.json, resp.json);
}

TEST(NetProtocol, HelloAckErrorAndStatsRoundTrip) {
  HelloAck ack_in{4096, "mcfuser-fusion-server/1"};
  HelloAck ack;
  ASSERT_TRUE(decode_hello_ack(payload_of(encode_hello_ack(ack_in)), &ack));
  EXPECT_EQ(ack.max_frame_bytes, 4096u);
  EXPECT_EQ(ack.server, "mcfuser-fusion-server/1");

  ErrorMsg err;
  ASSERT_TRUE(decode_error(
      payload_of(encode_error(ErrorCode::FrameTooLarge, "2097152 > cap", 5)),
      &err));
  EXPECT_EQ(err.code, ErrorCode::FrameTooLarge);
  EXPECT_EQ(err.detail, "2097152 > cap");
  EXPECT_EQ(err.id, 5u);

  std::string stats;
  ASSERT_TRUE(
      decode_stats_result(payload_of(encode_stats_result("{\"x\":1}")), &stats));
  EXPECT_EQ(stats, "{\"x\":1}");
}

TEST(NetProtocol, EveryTruncationPrefixFailsCleanly) {
  const std::string full = payload_of(encode_fuse_request(sample_request()));
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::string prefix = full.substr(0, cut);
    MsgType type{};
    if (decode_header(prefix, &type) != HeaderStatus::Ok) continue;
    FuseRequest out;
    std::string why;
    EXPECT_FALSE(decode_fuse_request(prefix, &out, &why))
        << "decoded a " << cut << "-byte prefix";
    EXPECT_FALSE(why.empty());
  }
}

TEST(NetProtocol, BadMagicIsClassified) {
  std::string payload = payload_of(encode_hello());
  payload[0] = 'X';  // corrupt the magic
  MsgType type{};
  EXPECT_EQ(decode_header(payload, &type), HeaderStatus::BadMagic);
}

TEST(NetProtocol, BadVersionIsClassifiedAndReported) {
  std::string payload = payload_of(encode_hello());
  payload[4] = static_cast<char>(kProtocolVersion + 1);
  MsgType type{};
  std::uint8_t seen = 0;
  EXPECT_EQ(decode_header(payload, &type, &seen), HeaderStatus::BadVersion);
  EXPECT_EQ(seen, kProtocolVersion + 1);
}

TEST(NetProtocol, ShortHeaderIsBadFrame) {
  MsgType type{};
  EXPECT_EQ(decode_header("", &type), HeaderStatus::BadFrame);
  EXPECT_EQ(decode_header("MCF", &type), HeaderStatus::BadFrame);
}

TEST(NetProtocol, LyingInnerCountIsRejectedWithoutAllocating) {
  // Hand-craft a request announcing 3 billion inner dims; the cap check
  // must fire on the count alone.
  framing::FrameWriter w;
  w.u32(kMagic);
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(MsgType::FuseChain));
  w.u64(1);
  w.str("liar");
  w.i64(1);
  w.i64(1);
  w.u32(3000000000u);  // inner count
  FuseRequest out;
  std::string why;
  EXPECT_FALSE(decode_fuse_request(w.payload(), &out, &why));
  EXPECT_NE(why.find("inner count"), std::string::npos) << why;
}

TEST(NetProtocol, LyingEpilogueCountIsRejected) {
  // Hand-craft a request with a hostile epilogue count.
  framing::FrameWriter w;
  w.u32(kMagic);
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(MsgType::FuseChain));
  w.u64(1);
  w.str("liar");
  w.i64(1);
  w.i64(1);
  w.u32(0);            // no inner dims
  w.u32(0xFFFFFFFFu);  // epilogue count
  FuseRequest out;
  std::string why;
  EXPECT_FALSE(decode_fuse_request(w.payload(), &out, &why));
  EXPECT_NE(why.find("epilogue count"), std::string::npos) << why;
}

TEST(NetProtocol, ErrorCodeOutsideEnumFailsDecode) {
  framing::FrameWriter w;
  w.u32(kMagic);
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(MsgType::Error));
  w.u8(200);  // not an ErrorCode
  w.str("detail");
  w.u64(0);
  ErrorMsg err;
  EXPECT_FALSE(decode_error(w.payload(), &err));
}

TEST(NetProtocol, ChainBridgeRoundTrips) {
  const ChainSpec chain = ChainSpec::attention("rt", 2, 128, 128, 64, 64);
  const FuseRequest req = request_from_chain(chain);
  std::string why;
  const auto back = chain_from_request(req, &why);
  ASSERT_TRUE(back.has_value()) << why;
  EXPECT_TRUE(back->valid()) << back->validation_error();
  EXPECT_EQ(back->name(), chain.name());
  EXPECT_EQ(back->batch(), chain.batch());
  EXPECT_EQ(back->m(), chain.m());
  EXPECT_EQ(back->inner(), chain.inner());
  EXPECT_EQ(back->num_ops(), chain.num_ops());
  for (int op = 0; op < chain.num_ops(); ++op) {
    EXPECT_EQ(back->epilogue(op), chain.epilogue(op));
  }
}

TEST(NetProtocol, UnknownEpilogueByteIsRefusedByTheBridge) {
  FuseRequest req = sample_request();
  req.epilogues = {250};
  std::string why;
  EXPECT_FALSE(chain_from_request(req, &why).has_value());
  EXPECT_NE(why.find("epilogue"), std::string::npos) << why;
}

TEST(NetProtocol, InvalidGeometryReachesChainValidationNotAbort) {
  FuseRequest req = sample_request();
  req.batch = -3;  // invalid, but decode/bridge must not abort
  std::string why;
  const auto chain = chain_from_request(req, &why);
  ASSERT_TRUE(chain.has_value());
  EXPECT_FALSE(chain->valid());
  EXPECT_FALSE(chain->validation_error().empty());
}

TEST(NetProtocol, DirectionsCannotAlias) {
  // Client->server types live in 0x01..0x7F, server->client in 0x81+.
  for (const MsgType t :
       {MsgType::Hello, MsgType::FuseChain, MsgType::StatsQuery}) {
    EXPECT_LT(static_cast<std::uint8_t>(t), 0x80);
  }
  for (const MsgType t : {MsgType::HelloAck, MsgType::FuseResult,
                          MsgType::StatsResult, MsgType::Error}) {
    EXPECT_GE(static_cast<std::uint8_t>(t), 0x80);
  }
}

}  // namespace
}  // namespace net
}  // namespace mcf
