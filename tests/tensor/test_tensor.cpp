#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

namespace mcf {
namespace {

TEST(Shape, NumelAndRank) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[1], 3);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_FALSE(Shape({2, 3}) == Shape({3, 2}));
}

TEST(Shape, ToString) { EXPECT_EQ(Shape({2, 3}).to_string(), "[2,3]"); }

TEST(Tensor, ZeroInitialised) {
  Tensor t(Shape{4, 4});
  for (const float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FillValue) {
  Tensor t(Shape{2, 2}, 1.5f);
  for (const float v : t.data()) EXPECT_EQ(v, 1.5f);
}

TEST(Tensor, RowMajor2dAccess) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t.data()[5], 7.0f);
  EXPECT_EQ(t.at(1, 2), 7.0f);
}

TEST(Tensor, RowMajor3dAccess) {
  Tensor t(Shape{2, 3, 4});
  t.at(1, 2, 3) = 9.0f;
  EXPECT_EQ(t.data()[1 * 12 + 2 * 4 + 3], 9.0f);
}

TEST(Tensor, FillRandomDeterministicAndBounded) {
  Tensor a(Shape{16, 16});
  Tensor b(Shape{16, 16});
  a.fill_random(3);
  b.fill_random(3);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
  for (const float v : a.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
  Tensor c(Shape{16, 16});
  c.fill_random(4);
  EXPECT_GT(max_abs_diff(a, c), 0.0);
}

TEST(Tensor, BatchSliceIsContiguousView) {
  Tensor t(Shape{3, 2, 2});
  t.at(2, 1, 1) = 5.0f;
  const auto slice = std::as_const(t).batch_slice(2);
  EXPECT_EQ(slice.size(), 4u);
  EXPECT_EQ(slice[3], 5.0f);
}

TEST(Tensor, BatchSliceWritable) {
  Tensor t(Shape{2, 2, 2});
  auto slice = t.batch_slice(1);
  slice[0] = 3.0f;
  EXPECT_EQ(t.at(1, 0, 0), 3.0f);
}

TEST(Compare, MaxAbsDiff) {
  Tensor a(Shape{2, 2}, 1.0f);
  Tensor b(Shape{2, 2}, 1.0f);
  b.at(0, 1) = 1.25f;
  EXPECT_FLOAT_EQ(static_cast<float>(max_abs_diff(a, b)), 0.25f);
}

TEST(Compare, AllcloseRespectsTolerances) {
  Tensor a(Shape{2}, 100.0f);
  Tensor b(Shape{2}, 100.01f);
  EXPECT_TRUE(allclose(a, b, 1e-3, 0.0));
  EXPECT_FALSE(allclose(a, b, 1e-6, 0.0));
}

TEST(Compare, AllcloseShapeMismatchIsFalse) {
  EXPECT_FALSE(allclose(Tensor(Shape{2}), Tensor(Shape{3})));
}

TEST(Compare, MaxRelDiffUsesFloor) {
  Tensor a(Shape{1}, 0.0f);
  Tensor b(Shape{1}, 1e-7f);
  // With atol floor 1e-5 the relative difference stays small.
  EXPECT_LT(max_rel_diff(a, b, 1e-5), 0.02);
}

}  // namespace
}  // namespace mcf
