#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mcf::ops {
namespace {

/// Naive triple-loop GEMM oracle.
void naive_gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  const std::int64_t m = a.shape()[0];
  const std::int64_t k = a.shape()[1];
  const std::int64_t n = b.shape()[1];
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
      c.at(i, j) = static_cast<float>(acc);
    }
  }
}

TEST(Ops, GemmMatchesNaive) {
  Tensor a(Shape{37, 29});
  Tensor b(Shape{29, 41});
  a.fill_random(1);
  b.fill_random(2);
  Tensor c(Shape{37, 41});
  Tensor ref(Shape{37, 41});
  gemm(a, b, c);
  naive_gemm(a, b, ref);
  EXPECT_LT(max_abs_diff(c, ref), 1e-4);
}

TEST(Ops, GemmLargeParallelPathMatchesNaive) {
  Tensor a(Shape{256, 64});
  Tensor b(Shape{64, 96});
  a.fill_random(5);
  b.fill_random(6);
  Tensor c(Shape{256, 96});
  Tensor ref(Shape{256, 96});
  gemm(a, b, c);
  naive_gemm(a, b, ref);
  EXPECT_LT(max_abs_diff(c, ref), 1e-4);
}

TEST(Ops, GemmIdentity) {
  Tensor a(Shape{8, 8});
  a.fill_random(3);
  Tensor eye(Shape{8, 8});
  for (int i = 0; i < 8; ++i) eye.at(i, i) = 1.0f;
  Tensor c(Shape{8, 8});
  gemm(a, eye, c);
  EXPECT_EQ(max_abs_diff(c, a), 0.0);
}

TEST(Ops, BatchedGemmPerBatchIndependence) {
  Tensor a(Shape{3, 16, 8});
  Tensor b(Shape{3, 8, 12});
  a.fill_random(7);
  b.fill_random(8);
  Tensor c(Shape{3, 16, 12});
  batched_gemm(a, b, c);
  // Batch 1 equals a standalone 2-D GEMM of its slices.
  Tensor a1(Shape{16, 8});
  Tensor b1(Shape{8, 12});
  std::copy(a.batch_slice(1).begin(), a.batch_slice(1).end(), a1.data().begin());
  std::copy(b.batch_slice(1).begin(), b.batch_slice(1).end(), b1.data().begin());
  Tensor c1(Shape{16, 12});
  gemm(a1, b1, c1);
  Tensor got(Shape{16, 12});
  std::copy(c.batch_slice(1).begin(), c.batch_slice(1).end(), got.data().begin());
  EXPECT_LT(max_abs_diff(got, c1), 1e-5);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Tensor x(Shape{13, 27});
  x.fill_random(11);
  Tensor y(x.shape());
  softmax(x, y);
  for (std::int64_t r = 0; r < 13; ++r) {
    double s = 0.0;
    for (std::int64_t c = 0; c < 27; ++c) s += y.at(r, c);
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxShiftInvariance) {
  Tensor x(Shape{4, 8});
  x.fill_random(12);
  Tensor shifted(x.shape());
  for (std::size_t i = 0; i < x.data().size(); ++i) {
    shifted.data()[i] = x.data()[i] + 100.0f;
  }
  Tensor y1(x.shape());
  Tensor y2(x.shape());
  softmax(x, y1);
  softmax(shifted, y2);
  EXPECT_LT(max_abs_diff(y1, y2), 1e-5);
}

TEST(Ops, ScaledSoftmaxMatchesManualScale) {
  Tensor x(Shape{4, 8});
  x.fill_random(13);
  Tensor pre(x.shape());
  for (std::size_t i = 0; i < x.data().size(); ++i) pre.data()[i] = x.data()[i] * 0.125f;
  Tensor y1(x.shape());
  Tensor y2(x.shape());
  scaled_softmax(x, 0.125f, y1);
  softmax(pre, y2);
  EXPECT_LT(max_abs_diff(y1, y2), 1e-6);
}

TEST(Ops, SoftmaxRank3OverLastDim) {
  Tensor x(Shape{2, 3, 5});
  x.fill_random(14);
  Tensor y(x.shape());
  softmax(x, y);
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t r = 0; r < 3; ++r) {
      double s = 0.0;
      for (std::int64_t c = 0; c < 5; ++c) s += y.at(b, r, c);
      EXPECT_NEAR(s, 1.0, 1e-5);
    }
  }
}

TEST(Ops, ReluClampsNegatives) {
  Tensor x(Shape{4});
  x.data()[0] = -2.0f;
  x.data()[1] = 0.0f;
  x.data()[2] = 3.0f;
  x.data()[3] = -0.1f;
  Tensor y(x.shape());
  relu(x, y);
  EXPECT_EQ(y.data()[0], 0.0f);
  EXPECT_EQ(y.data()[1], 0.0f);
  EXPECT_EQ(y.data()[2], 3.0f);
  EXPECT_EQ(y.data()[3], 0.0f);
}

TEST(Ops, GeluKnownValues) {
  Tensor x(Shape{3});
  x.data()[0] = 0.0f;
  x.data()[1] = 10.0f;
  x.data()[2] = -10.0f;
  Tensor y(x.shape());
  gelu(x, y);
  EXPECT_NEAR(y.data()[0], 0.0f, 1e-6);
  EXPECT_NEAR(y.data()[1], 10.0f, 1e-3);
  EXPECT_NEAR(y.data()[2], 0.0f, 1e-3);
}

TEST(Ops, AddElementwise) {
  Tensor a(Shape{2, 2}, 1.0f);
  Tensor b(Shape{2, 2}, 2.5f);
  Tensor y(Shape{2, 2});
  add(a, b, y);
  for (const float v : y.data()) EXPECT_FLOAT_EQ(v, 3.5f);
}

TEST(Ops, BiasAddBroadcastsRows) {
  Tensor x(Shape{3, 4}, 1.0f);
  Tensor bias(Shape{4});
  for (int i = 0; i < 4; ++i) bias.data()[static_cast<std::size_t>(i)] = static_cast<float>(i);
  Tensor y(x.shape());
  bias_add(x, bias, y);
  for (std::int64_t r = 0; r < 3; ++r) {
    for (std::int64_t c = 0; c < 4; ++c) {
      EXPECT_FLOAT_EQ(y.at(r, c), 1.0f + static_cast<float>(c));
    }
  }
}

TEST(Ops, LayernormZeroMeanUnitVar) {
  Tensor x(Shape{5, 64});
  x.fill_random(21);
  Tensor y(x.shape());
  layernorm(x, y);
  for (std::int64_t r = 0; r < 5; ++r) {
    double mu = 0.0;
    double var = 0.0;
    for (std::int64_t c = 0; c < 64; ++c) mu += y.at(r, c);
    mu /= 64.0;
    for (std::int64_t c = 0; c < 64; ++c) var += (y.at(r, c) - mu) * (y.at(r, c) - mu);
    var /= 64.0;
    EXPECT_NEAR(mu, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(Ops, AttentionReferenceRowStochasticProperty) {
  // With V = identity-ish ones the attention output equals softmax-weighted
  // averages and must stay within the V value range.
  Tensor q(Shape{2, 8, 4});
  Tensor kt(Shape{2, 4, 8});
  Tensor v(Shape{2, 8, 4}, 1.0f);
  q.fill_random(31);
  kt.fill_random(32);
  Tensor o(Shape{2, 8, 4});
  attention_reference(q, kt, v, 0.5f, o);
  for (const float x : o.data()) EXPECT_NEAR(x, 1.0f, 1e-5);
}

TEST(Ops, GemmChainReferenceMatchesTwoGemms) {
  Tensor a(Shape{1, 16, 8});
  Tensor b(Shape{1, 8, 12});
  Tensor d(Shape{1, 12, 6});
  a.fill_random(41);
  b.fill_random(42);
  d.fill_random(43);
  Tensor e(Shape{1, 16, 6});
  gemm_chain_reference(a, b, d, e);
  Tensor c(Shape{1, 16, 12});
  batched_gemm(a, b, c);
  Tensor e2(Shape{1, 16, 6});
  batched_gemm(c, d, e2);
  EXPECT_LT(max_abs_diff(e, e2), 1e-5);
}

TEST(Ops, GemmChainReluEpilogueApplied) {
  Tensor a(Shape{1, 8, 4});
  Tensor b(Shape{1, 4, 8});
  Tensor d(Shape{1, 8, 4});
  a.fill_random(51);
  b.fill_random(52);
  d.fill_random(53);
  Tensor with(Shape{1, 8, 4});
  Tensor without(Shape{1, 8, 4});
  gemm_chain_reference(a, b, d, with, ChainEpilogue::Relu);
  gemm_chain_reference(a, b, d, without, ChainEpilogue::None);
  EXPECT_GT(max_abs_diff(with, without), 0.0);
}

TEST(Ops, GemmChainSoftmaxEpilogueMatchesAttention) {
  Tensor q(Shape{2, 16, 8});
  Tensor kt(Shape{2, 8, 16});
  Tensor v(Shape{2, 16, 8});
  q.fill_random(61);
  kt.fill_random(62);
  v.fill_random(63);
  Tensor o1(Shape{2, 16, 8});
  Tensor o2(Shape{2, 16, 8});
  gemm_chain_reference(q, kt, v, o1, ChainEpilogue::Softmax, 0.25f);
  attention_reference(q, kt, v, 0.25f, o2);
  EXPECT_LT(max_abs_diff(o1, o2), 1e-5);
}

}  // namespace
}  // namespace mcf::ops
