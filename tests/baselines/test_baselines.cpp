// Structural behaviour of the §VI baselines.
#include <gtest/gtest.h>

#include "baselines/ansor_like.hpp"
#include "baselines/bolt_like.hpp"
#include "baselines/chimera_like.hpp"
#include "baselines/flash_like.hpp"
#include "baselines/library_kernels.hpp"
#include "baselines/relay_like.hpp"
#include "baselines/unfused.hpp"
#include "search/mcfuser.hpp"

namespace mcf {
namespace {

ChainSpec g1() { return ChainSpec::gemm_chain("G1", 1, 512, 256, 64, 64); }
ChainSpec s2() { return ChainSpec::attention("S2", 12, 512, 512, 64, 64); }

TEST(Library, MenuBeatsOrMatchesFixedConfig) {
  const LibraryKernels lib(a100());
  const auto menu = lib.gemm(1, 512, 512, 256);
  const auto fixed = lib.gemm_fixed(1, 512, 512, 256, GemmConfig{128, 128, 32});
  EXPECT_LE(menu.time_s, fixed.time_s);
}

TEST(Library, GemmScalesWithWork) {
  const LibraryKernels lib(a100());
  MeasureOptions quiet;  // default noise is small; compare coarse scaling
  (void)quiet;
  const auto small = lib.gemm(1, 512, 512, 64);
  const auto large = lib.gemm(1, 2048, 2048, 512);
  EXPECT_GT(large.time_s, 3.0 * small.time_s);
}

TEST(Library, SoftmaxBandwidthBound) {
  const LibraryKernels lib(a100());
  const auto m = lib.softmax(4096, 512);
  EXPECT_GT(m.mem_time_s, m.comp_time_s);
}

TEST(Unfused, LaunchCountGemmChain) {
  const UnfusedBaseline pytorch(a100());
  const SubgraphResult r = pytorch.run(g1());
  EXPECT_EQ(r.kernel_launches, 2);  // two GEMM kernels
  EXPECT_FALSE(r.fused);
}

TEST(Unfused, LaunchCountAttention) {
  const UnfusedBaseline pytorch(a100());
  const SubgraphResult r = pytorch.run(s2());
  EXPECT_EQ(r.kernel_launches, 3);  // gemm, softmax, gemm
}

TEST(Unfused, ReluChainGetsExtraKernel) {
  const UnfusedBaseline pytorch(a100());
  const ChainSpec relu("r", 1, 512, {64, 256, 64},
                       {Epilogue::Relu, Epilogue::None});
  EXPECT_EQ(pytorch.run(relu).kernel_launches, 3);
}

TEST(Relay, EpilogueFusionSavesKernel) {
  const RelayLikeBaseline relay(a100());
  const ChainSpec relu("r", 1, 512, {64, 256, 64},
                       {Epilogue::Relu, Epilogue::None});
  EXPECT_EQ(relay.run(relu).kernel_launches, 2);  // relu folded into GEMM
}

TEST(Relay, SlowerThanMenuDispatchOnOddShapes) {
  const RelayLikeBaseline relay(a100());
  const LibraryKernels lib(a100());
  // A narrow GEMM where the fixed 128x128 template wastes a lot.
  EXPECT_GT(relay.gemm(1, 4096, 64, 64).time_s, lib.gemm(1, 4096, 64, 64).time_s);
}

TEST(Bolt, UnsupportedOnRtx3080) {
  const BoltLikeBaseline bolt(rtx3080());
  EXPECT_FALSE(bolt.supports_gpu());
  EXPECT_FALSE(bolt.run(g1()).supported);
}

TEST(Bolt, FusesPlainGemmChain) {
  const BoltLikeBaseline bolt(a100());
  const SubgraphResult r = bolt.run(g1());
  ASSERT_TRUE(r.supported);
  EXPECT_TRUE(r.fused);
  EXPECT_GT(r.tuning.templates_instantiated, 0);
  EXPECT_EQ(r.tuning.templates_instantiated, r.tuning.hardware_measurements);
}

TEST(Bolt, CannotFuseAttention) {
  const BoltLikeBaseline bolt(a100());
  const SubgraphResult r = bolt.run(s2());
  ASSERT_TRUE(r.supported);
  EXPECT_FALSE(r.fused);  // softmax is outside the pattern table
}

TEST(Bolt, LargeIntermediateDefeatsTemplates) {
  // G12-class shape: Tn == N = 1024 cannot fit the block tile (paper:
  // BOLT degrades on G11/G12).
  const BoltLikeBaseline bolt(a100());
  const SubgraphResult r = bolt.run(
      ChainSpec::gemm_chain("G12", 8, 1024, 1024, 128, 128));
  ASSERT_TRUE(r.supported);
  EXPECT_FALSE(r.fused);
}

TEST(Flash, SupportsOnlyMatchingHeadDims) {
  EXPECT_TRUE(FlashAttentionLikeBaseline::supports(s2()));
  EXPECT_FALSE(FlashAttentionLikeBaseline::supports(
      ChainSpec::attention("odd", 8, 512, 512, 64, 128)));  // K != H
  EXPECT_FALSE(FlashAttentionLikeBaseline::supports(g1()));  // no softmax
}

TEST(Flash, FusesSupportedAttention) {
  const FlashAttentionLikeBaseline flash(a100());
  const SubgraphResult r = flash.run(s2());
  EXPECT_TRUE(r.fused);
  EXPECT_EQ(r.kernel_launches, 1);
}

TEST(Flash, FallsBackWhenUnsupported) {
  const FlashAttentionLikeBaseline flash(a100());
  const SubgraphResult r =
      flash.run(ChainSpec::attention("odd", 8, 512, 512, 64, 128));
  EXPECT_FALSE(r.fused);
  EXPECT_EQ(r.kernel_launches, 3);
}

TEST(Flash, SlowerThanTunedMCFuser) {
  const GpuSpec gpu = a100();
  const FlashAttentionLikeBaseline flash(gpu);
  const FusionResult mcf = MCFuser(gpu).fuse(s2());
  ASSERT_TRUE(mcf.ok());
  EXPECT_GT(flash.run(s2()).time_s, mcf.time_s());
}

TEST(Ansor, DoesNotFuseSoftmaxChains) {
  AnsorOptions opts;
  opts.trials = 100;
  const AnsorLikeBaseline ansor(a100(), opts);
  const SubgraphResult r = ansor.run(s2());
  EXPECT_FALSE(r.fused);
  EXPECT_EQ(r.tuning.hardware_measurements, 100);  // budget still burnt
}

TEST(Ansor, FusesPlainChainsAndSpendsBudget) {
  AnsorOptions opts;
  opts.trials = 128;
  const AnsorLikeBaseline ansor(a100(), opts);
  const SubgraphResult r = ansor.run(g1());
  EXPECT_TRUE(r.fused);
  EXPECT_GE(r.tuning.hardware_measurements, 100);
  EXPECT_GT(r.tuning.model_trainings, 0);
}

TEST(Ansor, MoreTrialsNeverWorse) {
  AnsorOptions few;
  few.trials = 64;
  AnsorOptions many;
  many.trials = 512;
  const ChainSpec c = ChainSpec::gemm_chain("G8", 1, 1024, 512, 128, 128);
  const double t_few = AnsorLikeBaseline(a100(), few).run(c).time_s;
  const double t_many = AnsorLikeBaseline(a100(), many).run(c).time_s;
  EXPECT_LE(t_many, t_few * 1.05);
}

TEST(Chimera, RunsAndReportsMeasurements) {
  const ChimeraLikeBaseline chim(a100());
  const SubgraphResult r = chim.run(g1());
  ASSERT_TRUE(r.supported);
  EXPECT_TRUE(r.fused);
  EXPECT_GT(r.tuning.hardware_measurements, 0);
}

TEST(Chimera, PureDataMovementObjectiveMeasuresFew) {
  // Chimera selects analytically and only verifies on hardware: a handful
  // of measurements (its min-traffic picks may be rejected at lowering
  // and fall through to the next candidate).
  const ChimeraLikeBaseline chim(a100(), ChimeraLikeBaseline::Objective::DataMovement);
  const SubgraphResult r = chim.run(g1());
  ASSERT_TRUE(r.fused);
  EXPECT_GE(r.tuning.hardware_measurements, 1);
  EXPECT_LE(r.tuning.hardware_measurements, 8);
}

TEST(Chimera, DataMovementObjectiveCanMisjudge) {
  // The paper's critique: minimising traffic alone neglects computation.
  // The measured-time objective must be at least as good.
  const ChainSpec c = ChainSpec::gemm_chain("G5", 1, 512, 512, 512, 256);
  const double by_time =
      ChimeraLikeBaseline(a100(), ChimeraLikeBaseline::Objective::MeasuredTime)
          .run(c)
          .time_s;
  const double by_bytes =
      ChimeraLikeBaseline(a100(), ChimeraLikeBaseline::Objective::DataMovement)
          .run(c)
          .time_s;
  EXPECT_LE(by_time, by_bytes * 1.02);
}

TEST(CrossBaseline, FusionOrderingOnMemoryBoundShape) {
  // The headline ordering of Fig. 8 on a memory-bound chain.
  const GpuSpec gpu = a100();
  const ChainSpec c = g1();
  const double pytorch = UnfusedBaseline(gpu).run(c).time_s;
  AnsorOptions aopts;
  aopts.trials = 256;
  const double ansor = AnsorLikeBaseline(gpu, aopts).run(c).time_s;
  const FusionResult mcf = MCFuser(gpu).fuse(c);
  ASSERT_TRUE(mcf.ok());
  EXPECT_LT(mcf.time_s(), ansor * 1.05);
  EXPECT_LT(ansor, pytorch);
  EXPECT_GT(pytorch / mcf.time_s(), 2.0);  // fusion wins clearly
}

}  // namespace
}  // namespace mcf
