#include "baselines/gbdt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace mcf {
namespace {

double mse(const GbdtRegressor& model, const std::vector<std::vector<double>>& x,
           const std::vector<double>& y) {
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = model.predict(x[i]) - y[i];
    acc += d * d;
  }
  return acc / static_cast<double>(x.size());
}

TEST(Gbdt, UntrainedPredictsZero) {
  GbdtRegressor model;
  EXPECT_FALSE(model.trained());
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{1.0, 2.0}), 0.0);
}

TEST(Gbdt, FitsConstantExactly) {
  GbdtRegressor model;
  std::vector<std::vector<double>> x = {{0.0}, {1.0}, {2.0}};
  std::vector<double> y = {5.0, 5.0, 5.0};
  model.fit(x, y);
  EXPECT_TRUE(model.trained());
  EXPECT_NEAR(model.predict(x[1]), 5.0, 1e-9);
}

TEST(Gbdt, FitsStepFunction) {
  GbdtRegressor model;
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 64; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(i < 32 ? 1.0 : 3.0);
  }
  model.fit(x, y);
  EXPECT_NEAR(model.predict(std::vector<double>{5.0}), 1.0, 0.1);
  EXPECT_NEAR(model.predict(std::vector<double>{50.0}), 3.0, 0.1);
}

TEST(Gbdt, ReducesErrorOnLinearTarget) {
  Rng rng = make_rng(5);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 256; ++i) {
    const double a = u(rng);
    const double b = u(rng);
    x.push_back({a, b});
    y.push_back(3.0 * a - 2.0 * b);
  }
  GbdtRegressor model;
  model.fit(x, y);
  // Variance of y is ~ (9+4)/12; fit must explain most of it.
  EXPECT_LT(mse(model, x, y), 0.1);
}

TEST(Gbdt, LearnsInteraction) {
  Rng rng = make_rng(6);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 512; ++i) {
    const double a = u(rng);
    const double b = u(rng);
    x.push_back({a, b});
    y.push_back(a * b);  // pure interaction, no marginal effect
  }
  GbdtRegressor::Options opts;
  opts.trees = 80;
  GbdtRegressor model(opts);
  model.fit(x, y);
  EXPECT_LT(mse(model, x, y), 0.05);
}

TEST(Gbdt, RanksMonotonicTarget) {
  // The tuner use case: ranking matters more than calibration.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 128; ++i) {
    x.push_back({static_cast<double>(i % 16), static_cast<double>(i / 16)});
    y.push_back(x.back()[0] * 2.0 + x.back()[1]);
  }
  GbdtRegressor model;
  model.fit(x, y);
  int inversions = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (y[i] > y[i - 1] && model.predict(x[i]) < model.predict(x[i - 1])) {
      ++inversions;
    }
  }
  EXPECT_LT(inversions, 12);
}

TEST(Gbdt, HandlesTinyDatasets) {
  GbdtRegressor model;
  model.fit({{1.0}}, {2.0});
  EXPECT_NEAR(model.predict(std::vector<double>{1.0}), 2.0, 1e-9);
  model.fit({}, {});
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{1.0}), 0.0);
}

TEST(Gbdt, RefitReplacesModel) {
  GbdtRegressor model;
  model.fit({{0.0}, {1.0}}, {0.0, 0.0});
  EXPECT_NEAR(model.predict(std::vector<double>{0.5}), 0.0, 1e-9);
  model.fit({{0.0}, {1.0}}, {7.0, 7.0});
  EXPECT_NEAR(model.predict(std::vector<double>{0.5}), 7.0, 1e-9);
}

}  // namespace
}  // namespace mcf
