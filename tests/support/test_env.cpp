// Typed MCFUSER_* env-knob parsing (support/env.hpp).
//
// The contract under test: unset/empty means the default silently; a
// well-formed in-range value is honoured; anything malformed or
// out-of-range is rejected loudly back to the default — a typo'd knob
// must never be silently half-applied.
#include "support/env.hpp"

#include <cstdlib>
#include <string>

#include "gtest/gtest.h"

namespace mcf {
namespace {

/// Sets an environment variable for one test, restoring on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

constexpr const char* kName = "MCFUSER_TEST_ENV_KNOB";

TEST(Env, UnsetYieldsDefault) {
  ScopedEnv e(kName, nullptr);
  EXPECT_EQ(env::int64(kName, 7, 0, 100), 7);
  EXPECT_EQ(env::real(kName, 2.5, 0.0, 10.0), 2.5);
  EXPECT_EQ(env::str(kName, "dflt"), "dflt");
  EXPECT_TRUE(env::bool_flag(kName, true));
  EXPECT_FALSE(env::bool_flag(kName, false));
  EXPECT_EQ(env::raw(kName), nullptr);
}

TEST(Env, ValidValuesAreHonoured) {
  ScopedEnv e(kName, "42");
  EXPECT_EQ(env::int64(kName, 7, 0, 100), 42);
  EXPECT_EQ(env::real(kName, 2.5, 0.0, 100.0), 42.0);
  EXPECT_EQ(env::str(kName, "dflt"), "42");
  EXPECT_EQ(env::size(kName, 7), 42u);
}

TEST(Env, MalformedIntegerRejectsToDefault) {
  for (const char* bad : {"banana", "12abc", "4.5", "0x10"}) {
    ScopedEnv e(kName, bad);
    EXPECT_EQ(env::int64(kName, 7, 0, 100), 7) << "value '" << bad << "'";
  }
}

TEST(Env, OutOfRangeIntegerRejectsToDefault) {
  {
    ScopedEnv e(kName, "101");
    EXPECT_EQ(env::int64(kName, 7, 0, 100), 7);
  }
  {
    ScopedEnv e(kName, "-1");
    EXPECT_EQ(env::int64(kName, 7, 0, 100), 7);
  }
  {
    // Beyond int64 range entirely (ERANGE path).
    ScopedEnv e(kName, "99999999999999999999999999");
    EXPECT_EQ(env::int64(kName, 7, 0, 100), 7);
  }
}

TEST(Env, MalformedRealRejectsToDefault) {
  for (const char* bad : {"fast", "1.5x", "", "nan"}) {
    ScopedEnv e(kName, bad);
    EXPECT_EQ(env::real(kName, 2.5, 0.0, 10.0), 2.5) << "value '" << bad << "'";
  }
}

TEST(Env, RealRangeIsEnforced) {
  {
    ScopedEnv e(kName, "10.5");
    EXPECT_EQ(env::real(kName, 2.5, 0.0, 10.0), 2.5);
  }
  {
    ScopedEnv e(kName, "0.25");
    EXPECT_EQ(env::real(kName, 2.5, 0.0, 10.0), 0.25);
  }
}

TEST(Env, BoolFlagSemantics) {
  {
    ScopedEnv e(kName, "0");
    EXPECT_FALSE(env::bool_flag(kName, true));
  }
  {
    ScopedEnv e(kName, "1");
    EXPECT_TRUE(env::bool_flag(kName, false));
  }
  {
    // Any non-"0" value is truthy (mirrors the pre-consolidation
    // behaviour of the scattered hand-rolled parsers).
    ScopedEnv e(kName, "yes");
    EXPECT_TRUE(env::bool_flag(kName, false));
  }
  {
    // Empty string = unset.
    ScopedEnv e(kName, "");
    EXPECT_TRUE(env::bool_flag(kName, true));
    EXPECT_FALSE(env::bool_flag(kName, false));
  }
}

TEST(Env, SizeClampsItsMaximum) {
  ScopedEnv e(kName, "5000");
  EXPECT_EQ(env::size(kName, 7, /*max=*/4096), 7u);  // out of range -> default
}

}  // namespace
}  // namespace mcf
