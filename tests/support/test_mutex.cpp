// Lock-order validator tests (support/mutex.hpp).
//
// The abort paths run in a fork()ed child with stderr captured through a
// pipe: the parent asserts the child died of SIGABRT AND that the report
// names the locks involved.  fork() is safe here because this binary
// never spawns a thread that outlives a test body — every test joins its
// threads before returning, so the child never inherits a held malloc or
// validator lock.

#include "support/mutex.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mcf {
namespace {

/// Enables the validator for one test body, restoring the
/// release-default (disabled) afterwards so tests stay order-independent.
class ScopedLockChecks {
 public:
  ScopedLockChecks() { lock_order::set_enabled_for_testing(true); }
  ~ScopedLockChecks() { lock_order::set_enabled_for_testing(false); }
};

struct ChildResult {
  bool aborted = false;
  int exit_code = -1;
  std::string stderr_text;
};

/// Runs `body` in a fork()ed child with the validator enabled and stderr
/// redirected into a pipe; reports how the child died and what it wrote.
ChildResult run_in_child(const std::function<void()>& body) {
  ChildResult r;
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    ADD_FAILURE() << "pipe() failed: " << std::strerror(errno);
    return r;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ADD_FAILURE() << "fork() failed: " << std::strerror(errno);
    ::close(fds[0]);
    ::close(fds[1]);
    return r;
  }
  if (pid == 0) {
    ::close(fds[0]);
    ::dup2(fds[1], 2);
    ::close(fds[1]);
    lock_order::set_enabled_for_testing(true);
    body();
    ::_exit(0);  // only reached when the validator MISSED the violation
  }
  ::close(fds[1]);
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fds[0], buf, sizeof(buf));
    if (n > 0) {
      r.stderr_text.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0 || errno != EINTR) {
      break;
    }
  }
  ::close(fds[0]);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  r.aborted = WIFSIGNALED(status) && WTERMSIG(status) == SIGABRT;
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

TEST(LockOrderValidator, RecordsAcquisitionOrderEdges) {
  const ScopedLockChecks checks;
  const std::size_t before = lock_order::edge_count();
  Mutex a("edges-A");
  Mutex b("edges-B");
  {
    const LockGuard la(a);
    const LockGuard lb(b);
  }
  EXPECT_EQ(lock_order::edge_count(), before + 1);
  {
    // Same pair again: the edge is deduplicated, not re-recorded.
    const LockGuard la(a);
    const LockGuard lb(b);
  }
  EXPECT_EQ(lock_order::edge_count(), before + 1);
  // Destroying the mutexes purges their edges from the graph.
  Mutex c("edges-C");
  {
    const LockGuard la(a);
    const LockGuard lc(c);
  }
  EXPECT_EQ(lock_order::edge_count(), before + 2);
}

TEST(LockOrderValidator, DestructorPurgesEdges) {
  const ScopedLockChecks checks;
  const std::size_t before = lock_order::edge_count();
  {
    Mutex a("purge-A");
    Mutex b("purge-B");
    const LockGuard la(a);
    const LockGuard lb(b);
  }
  EXPECT_EQ(lock_order::edge_count(), before);
}

// The tentpole scenario: thread 1 takes A then B, thread 2 takes B then
// A.  Sequential threads never deadlock for real — but the validator
// must abort at the second thread's A acquisition, naming both locks and
// both acquisition stacks.
TEST(LockOrderValidator, AbInversionAcrossThreadsAborts) {
  const ChildResult r = run_in_child([] {
    Mutex a("inversion-lock-A");
    Mutex b("inversion-lock-B");
    std::thread t1([&] {
      const LockGuard la(a);
      const LockGuard lb(b);
    });
    t1.join();
    std::thread t2([&] {
      const LockGuard lb(b);
      const LockGuard la(a);  // closes the cycle -> abort
    });
    t2.join();
  });
  EXPECT_TRUE(r.aborted) << "validator missed the inversion; child exited "
                         << r.exit_code << "\nstderr:\n"
                         << r.stderr_text;
  EXPECT_NE(r.stderr_text.find("lock-order violation"), std::string::npos)
      << r.stderr_text;
  EXPECT_NE(r.stderr_text.find("inversion-lock-A"), std::string::npos)
      << r.stderr_text;
  EXPECT_NE(r.stderr_text.find("inversion-lock-B"), std::string::npos)
      << r.stderr_text;
  // Both sides of the report: the acquiring thread's held stack AND the
  // recorded conflicting order.
  EXPECT_NE(r.stderr_text.find("while holding"), std::string::npos)
      << r.stderr_text;
  EXPECT_NE(r.stderr_text.find("recorded earlier"), std::string::npos)
      << r.stderr_text;
}

TEST(LockOrderValidator, TransitiveCycleAborts) {
  // A -> B and B -> C recorded; acquiring A under C closes the 3-cycle.
  const ChildResult r = run_in_child([] {
    Mutex a("chain-A");
    Mutex b("chain-B");
    Mutex c("chain-C");
    {
      const LockGuard la(a);
      const LockGuard lb(b);
    }
    {
      const LockGuard lb(b);
      const LockGuard lc(c);
    }
    const LockGuard lc(c);
    const LockGuard la(a);  // A reaches C through B: cycle
  });
  EXPECT_TRUE(r.aborted) << r.stderr_text;
  EXPECT_NE(r.stderr_text.find("chain-A"), std::string::npos) << r.stderr_text;
  EXPECT_NE(r.stderr_text.find("chain-C"), std::string::npos) << r.stderr_text;
}

TEST(LockOrderValidator, RecursiveAcquisitionAborts) {
  const ChildResult r = run_in_child([] {
    Mutex m("recursive-M");
    const LockGuard l1(m);
    m.lock();  // std::mutex self-relock is UB; the validator reports it
  });
  EXPECT_TRUE(r.aborted) << r.stderr_text;
  EXPECT_NE(r.stderr_text.find("recursive acquisition"), std::string::npos)
      << r.stderr_text;
  EXPECT_NE(r.stderr_text.find("recursive-M"), std::string::npos)
      << r.stderr_text;
}

TEST(LockOrderValidator, AssertHeldAbortsWhenNotHeld) {
  const ChildResult r = run_in_child([] {
    Mutex m("assert-M");
    m.assert_held();
  });
  EXPECT_TRUE(r.aborted) << r.stderr_text;
  EXPECT_NE(r.stderr_text.find("assert_held"), std::string::npos)
      << r.stderr_text;
}

TEST(LockOrderValidator, AssertHeldPassesUnderLock) {
  const ScopedLockChecks checks;
  Mutex m("assert-held-ok");
  const LockGuard lk(m);
  m.assert_held();  // must not abort
}

TEST(LockOrderValidator, TryLockRecordsNoEdges) {
  const ScopedLockChecks checks;
  const std::size_t before = lock_order::edge_count();
  Mutex a("try-A");
  Mutex b("try-B");
  {
    const LockGuard la(a);
    ASSERT_TRUE(b.try_lock());
    b.unlock();
  }
  {
    // The try_lock order is deliberately inverted; since try_lock cannot
    // block it records no edge and the validator stays silent.
    const LockGuard lb(b);
    ASSERT_TRUE(a.try_lock());
    a.unlock();
  }
  EXPECT_EQ(lock_order::edge_count(), before);
}

TEST(LockOrderValidator, CondVarWaitKeepsValidatorConsistent) {
  const ScopedLockChecks checks;
  Mutex mu("cv-M");
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    const LockGuard lk(mu);
    ready = true;
    cv.notify_one();
  });
  {
    UniqueLock lk(mu);
    cv.wait(lk, [&] {
      mu.assert_held();
      return ready;
    });
    mu.assert_held();
  }
  producer.join();
  // The lock is released and re-acquirable: the held stack survived the
  // wait's internal unlock/relock.
  const LockGuard lk(mu);
  mu.assert_held();
}

TEST(LockOrderValidator, UniqueLockRelockTracksHeldStack) {
  const ScopedLockChecks checks;
  Mutex m("relock-M");
  UniqueLock lk(m);
  EXPECT_TRUE(lk.owns_lock());
  m.assert_held();
  lk.unlock();
  EXPECT_FALSE(lk.owns_lock());
  lk.lock();
  EXPECT_TRUE(lk.owns_lock());
  m.assert_held();
}

TEST(LockOrderValidator, DisabledMeansNoTracking) {
  lock_order::set_enabled_for_testing(false);
  const std::size_t before = lock_order::edge_count();
  Mutex a("off-A");
  Mutex b("off-B");
  {
    const LockGuard la(a);
    const LockGuard lb(b);
  }
#if !defined(__SANITIZE_THREAD__)
  // With checks off this inversion must be silently tolerated — but
  // TSan's own lock-order detector (rightly) flags the raw pthread
  // inversion, so the deliberate half only runs outside the TSan lane.
  {
    const LockGuard lb(b);
    const LockGuard la(a);  // inversion, but checks are off: no abort
  }
#endif
  EXPECT_EQ(lock_order::edge_count(), before);
}

}  // namespace
}  // namespace mcf
