// LruMap: the shared mechanics behind every bounded memo (engine result
// memo, measurement-layer gate/tensor memos, jit kernel registry).
#include "support/lru_map.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mcf {
namespace {

TEST(LruMap, UnboundedByDefault) {
  LruMap<int, int> m;
  for (int i = 0; i < 100; ++i) (void)m.insert(i, i * 10);
  EXPECT_EQ(m.size(), 100u);
  EXPECT_EQ(m.evictions(), 0u);
  ASSERT_NE(m.find(0), nullptr);
  EXPECT_EQ(*m.find(0), 0);
}

TEST(LruMap, EntryCapEvictsLeastRecentlyUsed) {
  LruMap<int, int> m(LruMap<int, int>::Limits{2, 0});
  (void)m.insert(1, 1);
  (void)m.insert(2, 2);
  ASSERT_NE(m.find(1), nullptr);  // touch 1: 2 becomes the LRU
  (void)m.insert(3, 3);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.evictions(), 1u);
  EXPECT_NE(m.find(1), nullptr);
  EXPECT_EQ(m.find(2), nullptr);  // the victim
  EXPECT_NE(m.find(3), nullptr);
}

TEST(LruMap, ContainsDoesNotRefreshRecency) {
  LruMap<int, int> m(LruMap<int, int>::Limits{2, 0});
  (void)m.insert(1, 1);
  (void)m.insert(2, 2);
  EXPECT_TRUE(m.contains(1));  // no touch: 1 stays the LRU
  (void)m.insert(3, 3);
  EXPECT_FALSE(m.contains(1));
  EXPECT_TRUE(m.contains(2));
}

TEST(LruMap, InsertOfExistingKeyKeepsIncumbentAndRefreshes) {
  LruMap<int, int> m(LruMap<int, int>::Limits{2, 0});
  (void)m.insert(1, 100);
  (void)m.insert(2, 200);
  EXPECT_EQ(m.insert(1, 999), 100);  // incumbent kept, recency refreshed
  (void)m.insert(3, 300);
  EXPECT_TRUE(m.contains(1));
  EXPECT_FALSE(m.contains(2));
}

TEST(LruMap, ByteCapNeverEvictsTheLastEntry) {
  LruMap<std::string, int> m(LruMap<std::string, int>::Limits{0, 10});
  (void)m.insert("big", 1, 100);  // alone over the cap: stays
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.bytes(), 100u);
  (void)m.insert("big2", 2, 100);  // evicts "big", then stops at one
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.bytes(), 100u);
  EXPECT_EQ(m.evictions(), 1u);
  EXPECT_TRUE(m.contains("big2"));
}

TEST(LruMap, ByteAccountingTracksEvictions) {
  LruMap<int, int> m(LruMap<int, int>::Limits{0, 64});
  (void)m.insert(1, 1, 32);
  (void)m.insert(2, 2, 32);
  EXPECT_EQ(m.bytes(), 64u);
  (void)m.insert(3, 3, 16);  // 80 > 64: evict 1 (oldest) -> 48
  EXPECT_EQ(m.bytes(), 48u);
  EXPECT_FALSE(m.contains(1));
  EXPECT_TRUE(m.contains(2));
  EXPECT_TRUE(m.contains(3));
}

}  // namespace
}  // namespace mcf
