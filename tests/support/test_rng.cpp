#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mcf {
namespace {

TEST(Rng, SplitmixIsDeterministic) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

TEST(Rng, HashCombineOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Rng, HashStringDistinguishes) {
  EXPECT_NE(hash_string("G1"), hash_string("G2"));
  EXPECT_EQ(hash_string("attn"), hash_string("attn"));
}

TEST(Rng, HashNoiseWithinBounds) {
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const double v = hash_noise(k, 0.05);
    EXPECT_GE(v, 0.95);
    EXPECT_LE(v, 1.05);
  }
}

TEST(Rng, HashNoiseZeroAmplitudeIsOne) {
  EXPECT_DOUBLE_EQ(hash_noise(123, 0.0), 1.0);
}

TEST(Rng, HashNoiseCoversRange) {
  // The noise should actually spread over the interval, not cluster.
  double lo = 1.0;
  double hi = 1.0;
  for (std::uint64_t k = 0; k < 200; ++k) {
    const double v = hash_noise(k, 0.05);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 0.97);
  EXPECT_GT(hi, 1.03);
}

TEST(Rng, MakeRngReproducibleStreams) {
  Rng a = make_rng(7);
  Rng b = make_rng(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
  Rng c = make_rng(8);
  EXPECT_NE(make_rng(7)(), c());
}

TEST(Rng, SmallSeedsDecorrelated) {
  std::set<std::uint64_t> firsts;
  for (std::uint64_t s = 0; s < 64; ++s) firsts.insert(make_rng(s)());
  EXPECT_EQ(firsts.size(), 64u);
}

}  // namespace
}  // namespace mcf
