#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mcf {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSingleItemRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(1, [&](std::int64_t) { count++; });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  std::vector<std::int64_t> contrib(10000, 0);
  pool.parallel_for(10000, [&](std::int64_t i) { contrib[static_cast<std::size_t>(i)] = i; });
  const auto total = std::accumulate(contrib.begin(), contrib.end(), std::int64_t{0});
  EXPECT_EQ(total, 10000LL * 9999 / 2);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool& pool = ThreadPool::global();
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::int64_t) {
    ThreadPool::global().parallel_for(8, [&](std::int64_t) { count++; });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::int64_t i) {
                          if (i == 31) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ThreadPool, SlotsAreInRangeAndCoverEveryIndex) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  std::atomic<bool> slot_ok{true};
  pool.parallel_for_slots(500, [&](unsigned slot, std::int64_t i) {
    if (slot >= pool.concurrency()) slot_ok = false;
    hits[static_cast<std::size_t>(i)]++;
  });
  EXPECT_TRUE(slot_ok.load());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SlotsAreExclusiveWhileRunning) {
  // No two concurrently running chunks may share a slot: per-slot scratch
  // must be safe without locks.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> active(pool.concurrency());
  std::atomic<bool> exclusive{true};
  pool.parallel_for_slots(256, [&](unsigned slot, std::int64_t) {
    if (active[slot].fetch_add(1) != 0) exclusive = false;
    active[slot].fetch_sub(1);
  });
  EXPECT_TRUE(exclusive.load());
}

TEST(ThreadPool, ParallelForReduceSumsExactly) {
  ThreadPool pool(4);
  const auto total = pool.parallel_for_reduce<std::int64_t>(
      10000, 0,
      [](unsigned, std::int64_t i, std::int64_t& acc) { acc += i; },
      [](std::int64_t& into, const std::int64_t& from) { into += from; });
  EXPECT_EQ(total, 10000LL * 9999 / 2);
}

TEST(ThreadPool, ParallelForReduceEmptyRangeIsIdentity) {
  ThreadPool pool(2);
  const auto total = pool.parallel_for_reduce<int>(
      0, 0,
      [](unsigned, std::int64_t, int&) { FAIL() << "body ran on empty range"; },
      [](int& into, const int& from) { into += from; });
  EXPECT_EQ(total, 0);
}

TEST(ThreadPool, GrainLimitsChunkCount) {
  // With grain >= n the whole range must run as one chunk (inline, on the
  // caller slot) — observable via the slot handed to the body.
  ThreadPool pool(4);
  std::vector<unsigned> slots(64, 1234u);
  pool.parallel_for_slots(
      64, [&](unsigned slot, std::int64_t i) { slots[static_cast<std::size_t>(i)] = slot; },
      64);
  for (const unsigned s : slots) EXPECT_EQ(s, pool.size());
}

TEST(ThreadPool, StackReuseChurn) {
  // Pins a TSan finding: a non-final chunk used to read the completion
  // target from the stack-allocated ForState AFTER its own done counter
  // increment — past that increment the final chunk can complete, wake
  // the caller, and let the NEXT parallel_for reuse the same stack
  // bytes, so the straggler read raced the successor's construction.
  // Back-to-back tiny calls from alternating stack depths maximise the
  // frame reuse; the race itself is caught by the CI TSan lane running
  // this test.
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(3, [&](std::int64_t i) { total += i; }, 1);
    [&]() noexcept {  // different frame offset for the ForState
      pool.parallel_for(2, [&](std::int64_t i) { total += i; }, 1);
    }();
  }
  EXPECT_EQ(total.load(), 200 * (3 + 1));
}

TEST(ThreadPool, NestedCallReusesWorkerSlot) {
  ThreadPool pool(4);
  std::atomic<bool> ok{true};
  pool.parallel_for_slots(8, [&](unsigned outer_slot, std::int64_t) {
    pool.parallel_for_slots(4, [&](unsigned inner_slot, std::int64_t) {
      if (inner_slot != outer_slot) ok = false;
    });
  });
  EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace mcf
