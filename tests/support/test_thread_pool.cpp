#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mcf {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSingleItemRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(1, [&](std::int64_t) { count++; });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  std::vector<std::int64_t> contrib(10000, 0);
  pool.parallel_for(10000, [&](std::int64_t i) { contrib[static_cast<std::size_t>(i)] = i; });
  const auto total = std::accumulate(contrib.begin(), contrib.end(), std::int64_t{0});
  EXPECT_EQ(total, 10000LL * 9999 / 2);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool& pool = ThreadPool::global();
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::int64_t) {
    ThreadPool::global().parallel_for(8, [&](std::int64_t) { count++; });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::int64_t i) {
                          if (i == 31) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

}  // namespace
}  // namespace mcf
