#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mcf {
namespace {

TEST(Stats, MeanBasic) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanEmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(Stats, StddevKnownValue) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample stddev of this classic set is ~2.138.
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
}

TEST(Stats, StddevSingleIsZero) {
  const std::vector<double> xs = {42.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, GeomeanBasic) {
  const std::vector<double> xs = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

TEST(Stats, GeomeanOfEqualValues) {
  const std::vector<double> xs = {3.0, 3.0, 3.0};
  EXPECT_NEAR(geomean(xs), 3.0, 1e-12);
}

TEST(Stats, QuantileEndpoints) {
  const std::vector<double> xs = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Stats, PearsonPerfectPositive) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectNegative) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> ys = {3, 2, 1};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateIsZero) {
  const std::vector<double> xs = {1, 1, 1};
  const std::vector<double> ys = {1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, PearsonInvariantToAffineTransform) {
  const std::vector<double> xs = {1, 3, 2, 5, 4};
  const std::vector<double> ys = {2, 1, 4, 3, 5};
  std::vector<double> xs2;
  for (const double x : xs) xs2.push_back(3.0 * x + 7.0);
  EXPECT_NEAR(pearson(xs, ys), pearson(xs2, ys), 1e-12);
}

TEST(Stats, AverageRanksNoTies) {
  const std::vector<double> xs = {30.0, 10.0, 20.0};
  const auto r = average_ranks(xs);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(Stats, AverageRanksWithTies) {
  const std::vector<double> xs = {1.0, 2.0, 2.0, 3.0};
  const auto r = average_ranks(xs);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
}

TEST(Stats, SpearmanMonotonicNonlinear) {
  // y = x^3 is a nonlinear monotonic map: Spearman 1, Pearson < 1.
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(x * x * x);
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
  EXPECT_LT(pearson(xs, ys), 1.0);
}

TEST(Stats, RunningStatsTracksMinMaxMean) {
  RunningStats rs;
  rs.add(3.0);
  rs.add(-1.0);
  rs.add(4.0);
  EXPECT_EQ(rs.count(), 3u);
  EXPECT_DOUBLE_EQ(rs.min(), -1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 4.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 2.0);
}

TEST(Stats, RunningStatsEmpty) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
}

}  // namespace
}  // namespace mcf
