// The shared length-prefixed frame codec (support/framing.hpp).
//
// The codec sits on both trust boundaries of the repo — the sandbox
// worker pipe and the network front-end — so these tests are
// deterministic fuzz-style: truncation at every byte offset, lying
// length prefixes, zero-length frames, byte-at-a-time slow writers, and
// the Eof/Truncated/Timeout/TooLarge taxonomy on real pipes.
#include "support/framing.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace mcf {
namespace {

using framing::Deadline;
using framing::FrameReader;
using framing::FrameWriter;
using framing::IoStatus;

/// RAII pipe pair; read end [0], write end [1].
struct Pipe {
  int fd[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fd), 0); }
  ~Pipe() {
    close_read();
    close_write();
  }
  void close_read() {
    if (fd[0] >= 0) ::close(fd[0]);
    fd[0] = -1;
  }
  void close_write() {
    if (fd[1] >= 0) ::close(fd[1]);
    fd[1] = -1;
  }
};

constexpr std::size_t kCap = 1 << 16;

TEST(Framing, WriterReaderRoundTripAllTypes) {
  FrameWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.25);
  // Embedded NUL is the caller's business — the codec is length-based.
  w.str(std::string("hel\0lo", 6));
  w.str("");
  const std::string payload = w.payload();

  FrameReader r(payload);
  std::uint8_t u8 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  std::int64_t i64 = 0;
  double f64 = 0.0;
  std::string s1, s2;
  ASSERT_TRUE(r.u8(&u8));
  ASSERT_TRUE(r.u32(&u32));
  ASSERT_TRUE(r.u64(&u64));
  ASSERT_TRUE(r.i64(&i64));
  ASSERT_TRUE(r.f64(&f64));
  ASSERT_TRUE(r.str(&s1));
  ASSERT_TRUE(r.str(&s2));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f64, 3.25);
  EXPECT_EQ(s1, std::string("hel\0lo", 6));
  EXPECT_EQ(s2, "");
  EXPECT_EQ(r.remaining(), 0u);
  // Reading past the end fails cleanly instead of touching stale bytes.
  EXPECT_FALSE(r.u8(&u8));
}

TEST(Framing, ReaderRejectsEveryTruncationPrefix) {
  FrameWriter w;
  w.u32(7);
  w.i64(-9);
  w.str("payload");
  w.f64(1.5);
  const std::string full = w.payload();

  // At every prefix length, the decode sequence must fail at some field
  // (and succeed only on the full payload).
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    FrameReader r(full.data(), cut);
    std::uint32_t a = 0;
    std::int64_t b = 0;
    std::string s;
    double d = 0.0;
    const bool ok = r.u32(&a) && r.i64(&b) && r.str(&s) && r.f64(&d);
    EXPECT_FALSE(ok) << "decode succeeded on a " << cut << "-byte prefix";
  }
  FrameReader r(full);
  std::uint32_t a = 0;
  std::int64_t b = 0;
  std::string s;
  double d = 0.0;
  EXPECT_TRUE(r.u32(&a) && r.i64(&b) && r.str(&s) && r.f64(&d));
}

TEST(Framing, StringWithLyingLengthFailsInsteadOfAllocating) {
  // str() encodes u32 length + bytes; hand-craft a length far beyond the
  // actual payload.
  std::string payload;
  const std::uint32_t lie = 0x7FFFFFFF;
  payload.append(reinterpret_cast<const char*>(&lie), sizeof(lie));
  payload += "abc";
  FrameReader r(payload);
  std::string out;
  EXPECT_FALSE(r.str(&out));
}

TEST(Framing, FrameRoundTripOverPipe) {
  Pipe p;
  FrameWriter w;
  w.str("over the pipe");
  const std::string frame = w.framed();
  ASSERT_EQ(framing::write_all(p.fd[1], frame.data(), frame.size(), nullptr),
            IoStatus::Ok);

  std::string payload;
  ASSERT_EQ(framing::read_frame(p.fd[0], &payload, kCap, nullptr),
            IoStatus::Ok);
  FrameReader r(payload);
  std::string s;
  ASSERT_TRUE(r.str(&s));
  EXPECT_EQ(s, "over the pipe");
}

TEST(Framing, ZeroLengthFrameIsValid) {
  Pipe p;
  const std::uint32_t zero = 0;
  ASSERT_EQ(framing::write_all(p.fd[1], &zero, sizeof(zero), nullptr),
            IoStatus::Ok);
  std::string payload = "stale";
  ASSERT_EQ(framing::read_frame(p.fd[0], &payload, kCap, nullptr),
            IoStatus::Ok);
  EXPECT_TRUE(payload.empty());
}

TEST(Framing, CleanEofBeforeHeaderIsEof) {
  Pipe p;
  p.close_write();
  std::string payload;
  EXPECT_EQ(framing::read_frame(p.fd[0], &payload, kCap, nullptr),
            IoStatus::Eof);
}

TEST(Framing, EofMidHeaderIsTruncated) {
  Pipe p;
  const char half[2] = {1, 0};  // 2 of the 4 length-prefix bytes
  ASSERT_EQ(::write(p.fd[1], half, sizeof(half)), 2);
  p.close_write();
  std::string payload;
  EXPECT_EQ(framing::read_frame(p.fd[0], &payload, kCap, nullptr),
            IoStatus::Truncated);
}

TEST(Framing, EofMidBodyIsTruncated) {
  Pipe p;
  const std::uint32_t len = 100;
  ASSERT_EQ(::write(p.fd[1], &len, sizeof(len)), 4);
  ASSERT_EQ(::write(p.fd[1], "only this", 9), 9);
  p.close_write();
  std::string payload;
  EXPECT_EQ(framing::read_frame(p.fd[0], &payload, kCap, nullptr),
            IoStatus::Truncated);
}

TEST(Framing, OversizedAnnouncementIsTooLargeWithoutConsumingBody) {
  Pipe p;
  const std::uint32_t huge = 0x40000000;  // 1 GiB announced, nothing sent
  ASSERT_EQ(::write(p.fd[1], &huge, sizeof(huge)), 4);
  std::string payload;
  std::uint32_t announced = 0;
  EXPECT_EQ(framing::read_frame(p.fd[0], &payload, kCap, nullptr, &announced),
            IoStatus::TooLarge);
  EXPECT_EQ(announced, huge);
  // The cap check fired before any body allocation: nothing was read
  // past the prefix, so a subsequent byte written is still deliverable.
  ASSERT_EQ(::write(p.fd[1], "x", 1), 1);
  char c = 0;
  EXPECT_EQ(::read(p.fd[0], &c, 1), 1);
  EXPECT_EQ(c, 'x');
}

TEST(Framing, ByteAtATimeWriterStillDecodes) {
  Pipe p;
  FrameWriter w;
  w.u32(0xC0FFEE);
  w.str("dripped");
  const std::string frame = w.framed();

  std::thread dripper([&] {
    for (const char c : frame) {
      ASSERT_EQ(::write(p.fd[1], &c, 1), 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    p.close_write();
  });
  std::string payload;
  const Deadline dl = framing::deadline_after(30.0);
  EXPECT_EQ(framing::read_frame(p.fd[0], &payload, kCap, &dl), IoStatus::Ok);
  dripper.join();
  FrameReader r(payload);
  std::uint32_t v = 0;
  std::string s;
  ASSERT_TRUE(r.u32(&v) && r.str(&s));
  EXPECT_EQ(v, 0xC0FFEEu);
  EXPECT_EQ(s, "dripped");
}

TEST(Framing, DeadlineExpiresAsTimeout) {
  Pipe p;  // nothing ever written
  std::string payload;
  const Deadline dl = framing::deadline_after(0.05);
  EXPECT_EQ(framing::read_frame(p.fd[0], &payload, kCap, &dl),
            IoStatus::Timeout);
}

TEST(Framing, SlowlorisBodyHitsTheDeadline) {
  Pipe p;
  const std::uint32_t len = 1000;
  ASSERT_EQ(::write(p.fd[1], &len, sizeof(len)), 4);
  ASSERT_EQ(::write(p.fd[1], "abc", 3), 3);  // ... and then silence
  std::string payload;
  const Deadline dl = framing::deadline_after(0.05);
  EXPECT_EQ(framing::read_frame(p.fd[0], &payload, kCap, &dl),
            IoStatus::Timeout);
}

TEST(Framing, WaitReadableSeesDataAndTimesOutWithout) {
  Pipe p;
  const Deadline quick = framing::deadline_after(0.05);
  EXPECT_EQ(framing::wait_readable(p.fd[0], &quick), IoStatus::Timeout);
  ASSERT_EQ(::write(p.fd[1], "x", 1), 1);
  const Deadline dl = framing::deadline_after(5.0);
  EXPECT_EQ(framing::wait_readable(p.fd[0], &dl), IoStatus::Ok);
}

TEST(Framing, ReadExactReportsPartialProgress) {
  Pipe p;
  ASSERT_EQ(::write(p.fd[1], "abcd", 4), 4);
  p.close_write();
  char buf[10];
  std::size_t got = 0;
  EXPECT_EQ(framing::read_exact(p.fd[0], buf, sizeof(buf), nullptr, &got),
            IoStatus::Truncated);
  EXPECT_EQ(got, 4u);
  EXPECT_EQ(std::memcmp(buf, "abcd", 4), 0);
}

TEST(Framing, NonBlockingFdRoundTrips) {
  // The same codec serves blocking sandbox pipes and non-blocking server
  // sockets; EAGAIN must park in poll, not error out.
  Pipe p;
  ASSERT_EQ(::fcntl(p.fd[0], F_SETFL, O_NONBLOCK), 0);
  FrameWriter w;
  w.str("nonblocking");
  const std::string frame = w.framed();
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_EQ(framing::write_all(p.fd[1], frame.data(), frame.size(), nullptr),
              IoStatus::Ok);
  });
  std::string payload;
  const Deadline dl = framing::deadline_after(30.0);
  EXPECT_EQ(framing::read_frame(p.fd[0], &payload, kCap, &dl), IoStatus::Ok);
  writer.join();
}

TEST(Framing, DefaultCapHasSaneFloor) {
  // The env knob is latched process-wide on first use; here we only pin
  // the contract that the cap is at least the documented 4 KiB floor.
  EXPECT_GE(framing::default_max_frame_bytes(), 4096u);
}

}  // namespace
}  // namespace mcf
