#include "support/table.hpp"

#include <gtest/gtest.h>

namespace mcf {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("demo");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(Table, ColumnsAreAligned) {
  Table t;
  t.set_header({"name", "v"});
  t.add_row({"x", "12345"});
  t.add_row({"longer-name", "1"});
  const std::string s = t.to_string();
  // Both data rows start their second column at the same offset.
  const auto l1 = s.find("x");
  const auto l2 = s.find("longer-name");
  ASSERT_NE(l1, std::string::npos);
  ASSERT_NE(l2, std::string::npos);
}

TEST(Table, NumFormatsFixedDigits) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, SciSwitchesForLargeValues) {
  EXPECT_NE(Table::sci(1.23e9).find("e"), std::string::npos);
  EXPECT_EQ(Table::sci(12.5, 1), "12.5");
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t;
  t.set_header({"x"});
  t.add_row({"a,b"});
  t.add_row({"say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvRoundTripRowCount) {
  Table t;
  t.set_header({"a"});
  for (int i = 0; i < 5; ++i) t.add_row({std::to_string(i)});
  const std::string csv = t.to_csv();
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 6);
  EXPECT_EQ(t.rows(), 5u);
}

TEST(TableDeathTest, RowWidthMismatchAborts) {
  Table t;
  t.set_header({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

}  // namespace
}  // namespace mcf
