// Functional interpreter correctness.
//
// Property tests (TEST_P) sweep tiling expressions x tile sizes x chain
// kinds and assert two invariants for every consume-complete schedule:
//   1. the fused kernel's numerical output equals the unfused reference;
//   2. the dynamically counted traffic/FLOPs equal dag/volume's static
//      analysis exactly (the repo's analogue of the paper's NVPTX
//      validation).
#include <gtest/gtest.h>

#include "dag/volume.hpp"
#include "exec/interpreter.hpp"
#include "tensor/ops.hpp"

namespace mcf {
namespace {

enum class ChainKind { Plain, Relu, Attention };

const char* kind_name(ChainKind k) {
  switch (k) {
    case ChainKind::Plain:
      return "plain";
    case ChainKind::Relu:
      return "relu";
    case ChainKind::Attention:
      return "attention";
  }
  return "?";
}

ChainSpec make_chain(ChainKind kind, std::int64_t batch, std::int64_t m,
                     std::int64_t n, std::int64_t k, std::int64_t h) {
  switch (kind) {
    case ChainKind::Plain:
      return ChainSpec::gemm_chain("plain", batch, m, n, k, h);
    case ChainKind::Relu:
      return ChainSpec("relu", batch, m, {k, n, h}, {Epilogue::Relu, Epilogue::None});
    case ChainKind::Attention:
      return ChainSpec::attention("attn", batch, m, n, k, h);
  }
  return ChainSpec::gemm_chain("plain", batch, m, n, k, h);
}

void reference(const ChainSpec& chain, ChainKind kind, const Tensor& a,
               const std::vector<Tensor>& w, Tensor& out) {
  const ops::ChainEpilogue epi = kind == ChainKind::Plain
                                     ? ops::ChainEpilogue::None
                                     : (kind == ChainKind::Relu
                                            ? ops::ChainEpilogue::Relu
                                            : ops::ChainEpilogue::Softmax);
  ops::gemm_chain_reference(a, w[0], w[1], out, epi, chain.softmax_scale());
}

struct Case {
  ChainKind kind;
  bool flat;
  std::vector<int> order;  // deep order (ignored when flat)
  std::vector<std::int64_t> tiles;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string name = kind_name(c.kind);
  name += c.flat ? "_flat" : "_deep";
  for (const int l : c.order) name += std::to_string(l);
  for (const auto t : c.tiles) name += "_" + std::to_string(t);
  return name;
}

class FusedKernelProperty : public testing::TestWithParam<Case> {};

TEST_P(FusedKernelProperty, MatchesReferenceAndStaticCounts) {
  const Case& p = GetParam();
  // Dims chosen so every tile in the sweep divides or pads them.
  const std::int64_t batch = 2;
  const std::int64_t m = 96;
  const std::int64_t n = 96;
  const std::int64_t k = 48;
  const std::int64_t h = 48;
  const ChainSpec chain = make_chain(p.kind, batch, m, n, k, h);

  const TileExpr expr = p.flat ? make_flat_expr(chain, {0, 2}, {1, 3})
                               : make_deep_expr(chain, p.order);
  const Schedule s = build_schedule(chain, expr, p.tiles);
  ASSERT_TRUE(s.valid());
  if (!s.consume_complete()) GTEST_SKIP() << "Rule-2 schedule, not executable";

  Tensor a(Shape{batch, m, k});
  Tensor b(Shape{batch, k, n});
  Tensor d(Shape{batch, n, h});
  a.fill_random(101);
  b.fill_random(102);
  d.fill_random(103);
  std::vector<Tensor> w;
  w.push_back(std::move(b));
  w.push_back(std::move(d));

  Tensor out(Shape{batch, m, h});
  const ExecutionCounters counters = Interpreter(s).run(a, w, out);

  Tensor ref(Shape{batch, m, h});
  reference(chain, p.kind, a, w, ref);
  EXPECT_TRUE(allclose(out, ref, 1e-3, 1e-4))
      << "max diff " << max_abs_diff(out, ref);

  const VolumeReport vol = analyze_volume(s);
  EXPECT_DOUBLE_EQ(counters.load_bytes, vol.load_bytes);
  EXPECT_DOUBLE_EQ(counters.store_bytes, vol.store_bytes);
  EXPECT_DOUBLE_EQ(counters.flops, vol.flops);
  EXPECT_DOUBLE_EQ(counters.epilogue_flops, vol.epilogue_flops);
  EXPECT_DOUBLE_EQ(counters.stmt_trips, vol.stmt_trips);
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  const std::vector<std::vector<int>> deep_orders = {
      {0, 3, 2, 1},  // mhnk -> nk
      {0, 2, 3, 1},  // -> nk variant
      {0, 3, 1, 2},  // -> kn (complete only when Tk == K)
  };
  const std::vector<std::vector<std::int64_t>> tile_sets = {
      {32, 16, 32, 16}, {48, 48, 48, 48}, {96, 16, 96, 48},
      {32, 48, 32, 48}, {16, 32, 48, 16},
  };
  for (const ChainKind kind :
       {ChainKind::Plain, ChainKind::Relu, ChainKind::Attention}) {
    for (const auto& order : deep_orders) {
      for (const auto& tiles : tile_sets) {
        cases.push_back(Case{kind, false, order, tiles});
      }
    }
    for (const auto& tiles : tile_sets) {
      cases.push_back(Case{kind, true, {}, tiles});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FusedKernelProperty,
                         testing::ValuesIn(make_cases()), case_name);

// ---- targeted scenarios ----------------------------------------------------

TEST(Interpreter, PaddedDimsStillCorrect) {
  // 80 is not a multiple of 32: loads zero-pad, stores clip.
  const ChainSpec chain = ChainSpec::gemm_chain("pad", 1, 80, 80, 80, 80);
  const Schedule s = build_schedule(chain, make_deep_expr(chain, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{32, 32, 32, 32});
  Tensor a(Shape{1, 80, 80});
  Tensor b(Shape{1, 80, 80});
  Tensor d(Shape{1, 80, 80});
  a.fill_random(7);
  b.fill_random(8);
  d.fill_random(9);
  std::vector<Tensor> w;
  w.push_back(std::move(b));
  w.push_back(std::move(d));
  Tensor out(Shape{1, 80, 80});
  Interpreter(s).run(a, w, out);
  Tensor ref(Shape{1, 80, 80});
  ops::gemm_chain_reference(a, w[0], w[1], ref);
  EXPECT_TRUE(allclose(out, ref, 1e-3, 1e-4));
}

TEST(Interpreter, PaddedAttentionMasksSoftmaxColumns) {
  // Padded n columns must not leak exp(0) mass into the distribution.
  const ChainSpec chain = ChainSpec::attention("padattn", 2, 80, 80, 32, 32);
  const Schedule s = build_schedule(chain, make_deep_expr(chain, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{32, 32, 32, 32});
  Tensor q(Shape{2, 80, 32});
  Tensor kt(Shape{2, 32, 80});
  Tensor v(Shape{2, 80, 32});
  q.fill_random(11);
  kt.fill_random(12);
  v.fill_random(13);
  std::vector<Tensor> w;
  w.push_back(std::move(kt));
  w.push_back(std::move(v));
  Tensor out(Shape{2, 80, 32});
  Interpreter(s).run(q, w, out);
  Tensor ref(Shape{2, 80, 32});
  ops::attention_reference(q, w[0], w[1], chain.softmax_scale(), ref);
  EXPECT_TRUE(allclose(out, ref, 1e-3, 1e-4))
      << "max diff " << max_abs_diff(out, ref);
}

TEST(Interpreter, SerialAndParallelAgreeExactly) {
  const ChainSpec chain = ChainSpec::gemm_chain("par", 3, 64, 64, 32, 32);
  const Schedule s = build_schedule(chain, make_deep_expr(chain, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{32, 32, 32, 32});
  Tensor a(Shape{3, 64, 32});
  Tensor b(Shape{3, 32, 64});
  Tensor d(Shape{3, 64, 32});
  a.fill_random(21);
  b.fill_random(22);
  d.fill_random(23);
  std::vector<Tensor> w;
  w.push_back(std::move(b));
  w.push_back(std::move(d));
  Tensor out_par(Shape{3, 64, 32});
  Tensor out_ser(Shape{3, 64, 32});
  InterpreterOptions ser;
  ser.parallel = false;
  Interpreter(s).run(a, w, out_par);
  Interpreter(s, ser).run(a, w, out_ser);
  EXPECT_EQ(max_abs_diff(out_par, out_ser), 0.0);
}

TEST(Interpreter, SerialAndParallelCountersBitIdentical) {
  // Sweep several schedule shapes (padded dims, hoisted stores, softmax
  // chains): output tensors AND dynamic counters must be bit-identical
  // with the worker-slot arenas on and off — per-slot counter reduction
  // may not perturb a single bit.
  struct Shape3 {
    ChainKind kind;
    std::vector<std::int64_t> tiles;
  };
  const std::vector<Shape3> shapes = {
      {ChainKind::Plain, {32, 16, 32, 16}},
      {ChainKind::Plain, {96, 16, 96, 48}},
      {ChainKind::Relu, {48, 48, 48, 48}},
      {ChainKind::Attention, {16, 32, 48, 16}},
      {ChainKind::Attention, {32, 48, 32, 48}},
  };
  for (const auto& p : shapes) {
    const ChainSpec chain = make_chain(p.kind, 3, 96, 96, 48, 48);
    const Schedule s =
        build_schedule(chain, make_deep_expr(chain, {0, 3, 2, 1}), p.tiles);
    if (!s.consume_complete()) continue;
    Tensor a(Shape{3, 96, 48});
    Tensor b(Shape{3, 48, 96});
    Tensor d(Shape{3, 96, 48});
    a.fill_random(41);
    b.fill_random(42);
    d.fill_random(43);
    std::vector<Tensor> w;
    w.push_back(std::move(b));
    w.push_back(std::move(d));
    Tensor out_par(Shape{3, 96, 48});
    Tensor out_ser(Shape{3, 96, 48});
    InterpreterOptions ser;
    ser.parallel = false;
    const ExecutionCounters cp = Interpreter(s).run(a, w, out_par);
    const ExecutionCounters cs = Interpreter(s, ser).run(a, w, out_ser);
    EXPECT_EQ(max_abs_diff(out_par, out_ser), 0.0) << kind_name(p.kind);
    EXPECT_EQ(cp.load_bytes, cs.load_bytes) << kind_name(p.kind);
    EXPECT_EQ(cp.store_bytes, cs.store_bytes) << kind_name(p.kind);
    EXPECT_EQ(cp.flops, cs.flops) << kind_name(p.kind);
    EXPECT_EQ(cp.epilogue_flops, cs.epilogue_flops) << kind_name(p.kind);
    EXPECT_EQ(cp.stmt_trips, cs.stmt_trips) << kind_name(p.kind);
  }
}

TEST(Interpreter, RepeatedRunsAreDeterministic) {
  // Within a run, worker-slot arenas are reused across blocks; stale
  // state from an earlier block (or run) must never leak into a result.
  const ChainSpec chain = ChainSpec::attention("drift", 2, 80, 80, 32, 32);
  const Schedule s = build_schedule(chain, make_deep_expr(chain, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{32, 32, 32, 32});
  Tensor q(Shape{2, 80, 32});
  Tensor kt(Shape{2, 32, 80});
  Tensor v(Shape{2, 80, 32});
  q.fill_random(61);
  kt.fill_random(62);
  v.fill_random(63);
  std::vector<Tensor> w;
  w.push_back(std::move(kt));
  w.push_back(std::move(v));
  const Interpreter interp(s);
  Tensor first(Shape{2, 80, 32});
  interp.run(q, w, first);
  for (int r = 0; r < 3; ++r) {
    Tensor again(Shape{2, 80, 32});
    interp.run(q, w, again);
    EXPECT_EQ(max_abs_diff(first, again), 0.0) << "run " << r;
  }
}

TEST(Interpreter, ThreeOpChainNumerics) {
  const ChainSpec chain("triple", 2, 48, {32, 48, 24, 40});
  const TileExpr expr = make_deep_expr(chain, {0, 4, 3, 2, 1});
  const Schedule s = build_schedule(
      chain, expr, std::vector<std::int64_t>{24, 16, 24, 24, 40});
  ASSERT_TRUE(s.valid());
  ASSERT_TRUE(s.consume_complete());
  Tensor a(Shape{2, 48, 32});
  Tensor w0(Shape{2, 32, 48});
  Tensor w1(Shape{2, 48, 24});
  Tensor w2(Shape{2, 24, 40});
  a.fill_random(31);
  w0.fill_random(32);
  w1.fill_random(33);
  w2.fill_random(34);
  std::vector<Tensor> w;
  w.push_back(std::move(w0));
  w.push_back(std::move(w1));
  w.push_back(std::move(w2));
  Tensor out(Shape{2, 48, 40});
  Interpreter(s).run(a, w, out);
  // Reference: three chained batched GEMMs.
  Tensor x1(Shape{2, 48, 48});
  Tensor x2(Shape{2, 48, 24});
  Tensor ref(Shape{2, 48, 40});
  ops::batched_gemm(a, w[0], x1);
  ops::batched_gemm(x1, w[1], x2);
  ops::batched_gemm(x2, w[2], ref);
  EXPECT_TRUE(allclose(out, ref, 1e-3, 1e-4));
}

TEST(Interpreter, RejectsPartialConsumeSchedules) {
  const ChainSpec chain = ChainSpec::gemm_chain("bad", 1, 64, 64, 64, 64);
  const Schedule s = build_schedule(chain, make_deep_expr(chain, {0, 3, 1, 2}),
                                    std::vector<std::int64_t>{32, 32, 32, 32});
  ASSERT_FALSE(s.consume_complete());
  EXPECT_DEATH(Interpreter{s}, "Rule-2");
}

TEST(Interpreter, ShapeValidation) {
  const ChainSpec chain = ChainSpec::gemm_chain("shape", 1, 64, 64, 32, 32);
  const Schedule s = build_schedule(chain, make_deep_expr(chain, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{32, 32, 32, 32});
  Tensor a(Shape{1, 64, 16});  // wrong K
  Tensor b(Shape{1, 32, 64});
  Tensor d(Shape{1, 64, 32});
  std::vector<Tensor> w;
  w.push_back(std::move(b));
  w.push_back(std::move(d));
  Tensor out(Shape{1, 64, 32});
  EXPECT_DEATH(Interpreter(s).run(a, w, out), "input shape");
}

}  // namespace
}  // namespace mcf
