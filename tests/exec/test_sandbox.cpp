// Crash-isolated measurement workers (exec/sandbox.hpp): sandboxed
// timings agree with the in-process jit path, worker deaths are
// classified with the fatal signal's name, hung kernels die at the
// per-request deadline, garbage output fails loudly, the crash
// negative-cache serves known-bad digests without spawning processes
// (and retries after eviction), a poisoned on-disk kernel heals through
// evict + recompile, and the FusionEngine survives a chaos flood of
// SIGSEGV/SIGKILL/hang kernels with its accounting identity intact.
//
// Every fault is injected deterministically through the MCFUSER_JIT_FAULT
// seam compiled into the kernels (exec/codegen.cpp), which fires only in
// processes with MCFUSER_SANDBOX_WORKER set — the host process never
// executes a faulted kernel.
#include "exec/sandbox.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "exec/jit.hpp"
#include "gpu/spec.hpp"
#include "exec/program.hpp"
#include "ir/expr.hpp"
#include "measure/backend.hpp"
#include "search/tuning_cache.hpp"
#include "support/framing.hpp"

namespace mcf {
namespace {

// ---- fixtures ---------------------------------------------------------------

/// Static storage: the Schedule keeps a ChainSpec pointer.
const ChainSpec& gelu_chain() {
  static const ChainSpec c("sbx-gelu", 2, 96, {48, 96, 48},
                           {Epilogue::Gelu, Epilogue::None});
  return c;
}
/// ~64x the work of gelu_chain(): rank checks between the two are robust
/// to wall-clock noise.
const ChainSpec& big_chain() {
  static const ChainSpec c("sbx-gelu-big", 2, 384, {192, 384, 192},
                           {Epilogue::Gelu, Epilogue::None});
  return c;
}

Schedule schedule_for(const ChainSpec& c) {
  return build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                        std::vector<std::int64_t>{32, 16, 32, 16});
}

/// A gpu key no other process, test or (persisted) cache run ever used:
/// keys the jit disk cache AND the crash negative-cache, so each test is
/// isolated from every other by construction.
std::string unique_key(const char* prefix) {
  std::random_device rd;
  return std::string(prefix) + "-" + std::to_string(::getpid()) + "-" +
         std::to_string((static_cast<std::uint64_t>(rd()) << 32) ^ rd());
}

GpuSpec unique_gpu(const char* prefix) {
  GpuSpec g = a100();
  g.name = unique_key(prefix);
  return g;
}

/// Sets an environment variable for the enclosing scope, restoring the
/// previous value (or absence) on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    if (const char* old = ::getenv(name)) old_ = old;
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (old_) {
      ::setenv(name_, old_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::optional<std::string> old_;
};

/// Empty when sandboxed measurement can run here; otherwise why not
/// (sanitizer build, no toolchain, ...) — tests GTEST_SKIP on it.
std::string sandbox_skip_reason() {
  const sandbox::Availability avail = sandbox::availability();
  if (!avail.ok) return avail.reason;
  const jit::Toolchain tc = jit::detect_toolchain();
  if (!tc.ok()) return tc.reason;
  return "";
}

IsolatedJitBackendOptions fast_options(double deadline_s = 10.0,
                                       int max_retries = 1) {
  IsolatedJitBackendOptions opt;
  opt.warmup = 1;
  opt.repeats = 2;
  opt.pool.workers = 1;
  opt.pool.deadline_s = deadline_s;
  opt.pool.max_retries = max_retries;
  return opt;
}

// ---- availability / options -------------------------------------------------

TEST(Sandbox, AvailabilityAndPoolOptionsReadTheEnvironment) {
  // Whether the environment could sandbox at all BEFORE we poke it —
  // under sanitizer builds availability() reports the sanitizer reason
  // and the env-specific assertions below do not apply.
  const bool sandbox_possible = sandbox::availability().ok;
  {
    const ScopedEnv off("MCFUSER_SANDBOX", "0");
    const sandbox::Availability a = sandbox::availability();
    EXPECT_FALSE(a.ok);
    if (sandbox_possible) {
      EXPECT_NE(a.reason.find("MCFUSER_SANDBOX"), std::string::npos)
          << a.reason;
    }
  }
  {
    const ScopedEnv w("MCFUSER_SANDBOX_WORKERS", "3");
    const ScopedEnv d("MCFUSER_SANDBOX_DEADLINE_S", "2.5");
    const ScopedEnv r("MCFUSER_SANDBOX_RETRIES", "0");
    const sandbox::PoolOptions opt = sandbox::default_pool_options();
    EXPECT_EQ(opt.workers, 3);
    EXPECT_DOUBLE_EQ(opt.deadline_s, 2.5);
    EXPECT_EQ(opt.max_retries, 0);
  }
  {
    // Invalid values keep the defaults instead of poisoning the pool.
    const ScopedEnv w("MCFUSER_SANDBOX_WORKERS", "banana");
    EXPECT_EQ(sandbox::default_pool_options().workers,
              sandbox::PoolOptions{}.workers);
  }
}

TEST(Sandbox, WorkerRefusesOversizedFrameWithDistinctReason) {
  // Direct loopback into worker_main over plain pipes (no fork, no
  // dlopen — runs in every lane, sanitizer builds included): a frame
  // announcing more than the MCFUSER_FRAME_MAX_BYTES cap must be
  // answered with the distinct "frame too large" classification
  // (kBadRequest on the wire) before the worker exits non-zero.
  int req[2] = {-1, -1};
  int resp[2] = {-1, -1};
  ASSERT_EQ(::pipe(req), 0);
  ASSERT_EQ(::pipe(resp), 0);

  int rc = -1;
  std::thread worker([&] { rc = sandbox::worker_main(req[0], resp[1]); });

  // The length prefix alone is the attack: announce past any
  // configurable cap (the knob maxes out at 1 GiB) and send nothing.
  const std::uint32_t huge = 0x7FFFFFFF;
  ASSERT_EQ(framing::write_all(req[1], &huge, sizeof(huge)),
            framing::IoStatus::Ok);

  std::string payload;
  const framing::Deadline dl = framing::deadline_after(10.0);
  ASSERT_EQ(framing::read_frame(resp[0], &payload, 1 << 20, &dl),
            framing::IoStatus::Ok);
  worker.join();
  EXPECT_EQ(rc, 1);  // the desynced stream is fatal to the worker

  // Hand-decode the MCFW response: u32 magic, u8 status, str reason.
  framing::FrameReader r(payload);
  std::uint32_t magic = 0;
  std::uint8_t status = 0;
  std::string reason;
  ASSERT_TRUE(r.u32(&magic));
  EXPECT_EQ(magic, 0x4D434657u);  // "MCFW"
  ASSERT_TRUE(r.u8(&status));
  EXPECT_EQ(status, 4u);  // kBadRequest
  ASSERT_TRUE(r.str(&reason));
  EXPECT_NE(reason.find("frame too large: 2147483647 > "), std::string::npos)
      << reason;

  ::close(req[0]);
  ::close(req[1]);
  ::close(resp[0]);
  ::close(resp[1]);
}

TEST(Sandbox, BackendDegradesToInProcessPathWhenDisabled) {
  // disable_sandbox (and equally an unavailable environment) must leave
  // a backend that still satisfies the measurement contract.
  IsolatedJitBackendOptions opt;
  opt.disable_sandbox = true;
  const IsolatedJitBackend backend(unique_gpu("sbx-off"), opt);
  EXPECT_FALSE(backend.sandbox_active());
  EXPECT_FALSE(backend.fallback_reason().empty());
  const Schedule s = schedule_for(gelu_chain());
  const KernelMeasurement m = backend.measure(s);
  EXPECT_TRUE(m.ok) << m.fail_reason;
  EXPECT_GT(m.time_s, 0.0);
}

// ---- agreement with the in-process jit path ---------------------------------

TEST(Sandbox, SandboxedTimingsAgreeWithInProcessJit) {
  if (const std::string why = sandbox_skip_reason(); !why.empty()) {
    GTEST_SKIP() << why;
  }
  const GpuSpec gpu = unique_gpu("sbx-agree");
  const IsolatedJitBackend iso(gpu, fast_options());
  ASSERT_TRUE(iso.sandbox_active()) << iso.fallback_reason();
  const JitBackend inproc(gpu);

  const Schedule small = schedule_for(gelu_chain());
  const Schedule big = schedule_for(big_chain());

  const KernelMeasurement iso_small = iso.measure(small);
  const KernelMeasurement iso_big = iso.measure(big);
  const KernelMeasurement jit_small = inproc.measure(small);
  const KernelMeasurement jit_big = inproc.measure(big);
  for (const KernelMeasurement* m :
       {&iso_small, &iso_big, &jit_small, &jit_big}) {
    ASSERT_TRUE(m->ok) << m->fail_reason;
    EXPECT_GT(m->time_s, 0.0);
  }
  EXPECT_EQ(iso_small.n_blocks, jit_small.n_blocks);

  // Same artifact, same execution geometry, same trimmed-mean estimator:
  // the two paths must rank a ~64x work gap identically and land in the
  // same wall-clock ballpark (loose bound — CI machines are shared).
  EXPECT_LT(iso_small.time_s, iso_big.time_s);
  EXPECT_LT(jit_small.time_s, jit_big.time_s);
  const double ratio = iso_big.time_s / jit_big.time_s;
  EXPECT_GT(ratio, 1.0 / 10.0) << iso_big.time_s << " vs " << jit_big.time_s;
  EXPECT_LT(ratio, 10.0) << iso_big.time_s << " vs " << jit_big.time_s;
}

// ---- crash classification ---------------------------------------------------

TEST(Sandbox, SegfaultingKernelIsClassifiedWithSignalName) {
  if (const std::string why = sandbox_skip_reason(); !why.empty()) {
    GTEST_SKIP() << why;
  }
  const ScopedEnv fault("MCFUSER_JIT_FAULT", "segv");
  const sandbox::WorkerStats before = sandbox::stats_snapshot();
  const IsolatedJitBackend backend(unique_gpu("sbx-segv"), fast_options());
  const KernelMeasurement m = backend.measure(schedule_for(gelu_chain()));
  EXPECT_FALSE(m.ok);
  EXPECT_EQ(m.fail_kind, MeasureFailKind::WorkerCrashed);
  EXPECT_NE(m.fail_reason.find("SIGSEGV"), std::string::npos) << m.fail_reason;
  const sandbox::WorkerStats d = sandbox::stats_snapshot().since(before);
  // max_retries=1: the crash was retried once on a fresh worker (a
  // respawn), then recorded.
  EXPECT_GE(d.crashes, 2);
  EXPECT_GE(d.respawned, 1);
}

TEST(Sandbox, SigkilledWorkerIsClassified) {
  if (const std::string why = sandbox_skip_reason(); !why.empty()) {
    GTEST_SKIP() << why;
  }
  const ScopedEnv fault("MCFUSER_JIT_FAULT", "kill");
  const IsolatedJitBackend backend(unique_gpu("sbx-kill"), fast_options());
  const KernelMeasurement m = backend.measure(schedule_for(gelu_chain()));
  EXPECT_FALSE(m.ok);
  EXPECT_EQ(m.fail_kind, MeasureFailKind::WorkerCrashed);
  EXPECT_NE(m.fail_reason.find("SIGKILL"), std::string::npos) << m.fail_reason;
}

TEST(Sandbox, HungKernelIsKilledAtTheDeadline) {
  if (const std::string why = sandbox_skip_reason(); !why.empty()) {
    GTEST_SKIP() << why;
  }
  const ScopedEnv fault("MCFUSER_JIT_FAULT", "hang");
  const sandbox::WorkerStats before = sandbox::stats_snapshot();
  const IsolatedJitBackend backend(unique_gpu("sbx-hang"),
                                   fast_options(/*deadline_s=*/0.5));
  const KernelMeasurement m = backend.measure(schedule_for(gelu_chain()));
  EXPECT_FALSE(m.ok);
  EXPECT_EQ(m.fail_kind, MeasureFailKind::WorkerTimeout);
  EXPECT_NE(m.fail_reason.find("deadline"), std::string::npos) << m.fail_reason;
  const sandbox::WorkerStats d = sandbox::stats_snapshot().since(before);
  // Timeouts are never retried: exactly one deadline was burned.
  EXPECT_EQ(d.timeouts, 1);
}

TEST(Sandbox, GarbageOutputFailsTheMeasurement) {
  if (const std::string why = sandbox_skip_reason(); !why.empty()) {
    GTEST_SKIP() << why;
  }
  const ScopedEnv fault("MCFUSER_JIT_FAULT", "garbage");
  const IsolatedJitBackend backend(unique_gpu("sbx-garbage"), fast_options());
  const KernelMeasurement m = backend.measure(schedule_for(gelu_chain()));
  EXPECT_FALSE(m.ok);
  EXPECT_EQ(m.fail_kind, MeasureFailKind::Generic);
  EXPECT_NE(m.fail_reason.find("non-finite"), std::string::npos)
      << m.fail_reason;
}

// ---- crash negative-cache ---------------------------------------------------

TEST(Sandbox, CrashNegativeCacheServesWithoutSpawningAndRetriesAfterEvict) {
  if (const std::string why = sandbox_skip_reason(); !why.empty()) {
    GTEST_SKIP() << why;
  }
  const GpuSpec gpu = unique_gpu("sbx-negcache");
  const Schedule s = schedule_for(gelu_chain());
  const IsolatedJitBackend backend(gpu, fast_options());

  {
    const ScopedEnv fault("MCFUSER_JIT_FAULT", "segv");
    const KernelMeasurement first = backend.measure(s);
    ASSERT_FALSE(first.ok);
    ASSERT_EQ(first.fail_kind, MeasureFailKind::WorkerCrashed);
  }

  // Fault seam now off — but the digest is negative-cached: the repeat
  // measurement is served from the cache with NO worker traffic at all.
  const sandbox::WorkerStats before = sandbox::stats_snapshot();
  const KernelMeasurement cached = backend.measure(s);
  EXPECT_FALSE(cached.ok);
  EXPECT_EQ(cached.fail_kind, MeasureFailKind::WorkerCrashed);
  EXPECT_NE(cached.fail_reason.find("(crash-cache)"), std::string::npos)
      << cached.fail_reason;
  const sandbox::WorkerStats d = sandbox::stats_snapshot().since(before);
  EXPECT_EQ(d.requests, 0);
  EXPECT_EQ(d.spawned, 0);
  EXPECT_GE(d.negative_hits, 1);

  // Eviction re-arms the digest; with the fault seam off the kernel now
  // measures cleanly.
  const jit::KernelArtifact art =
      jit::resolve_artifact(s, gpu.name, jit::detect_toolchain());
  ASSERT_TRUE(art.ok()) << art.error;
  EXPECT_TRUE(sandbox::crash_cache_evict(art.key));
  const KernelMeasurement healed = backend.measure(s);
  EXPECT_TRUE(healed.ok) << healed.fail_reason;
  EXPECT_GT(healed.time_s, 0.0);
}

// ---- poisoned disk-cache healing --------------------------------------------

TEST(Sandbox, PoisonedKernelArtifactHealsViaEvictAndRecompile) {
  if (const std::string why = sandbox_skip_reason(); !why.empty()) {
    GTEST_SKIP() << why;
  }
  const GpuSpec gpu = unique_gpu("sbx-poison");
  const Schedule s = schedule_for(gelu_chain());
  const jit::Toolchain tc = jit::detect_toolchain();

  // Compile the artifact, then poison the cached .so on disk (the moral
  // equivalent of a truncated write or a foreign-ISA cache restore).
  // Replace via rename — a NEW inode — never by truncating in place:
  // compilation dlopen()ed the original into this process, and
  // truncating a live mapping turns its pages into SIGBUS mines.
  const jit::KernelArtifact art = jit::resolve_artifact(s, gpu.name, tc);
  ASSERT_TRUE(art.ok()) << art.error;
  {
    const std::string tmp = art.so_path + ".poison";
    std::ofstream os(tmp, std::ios::trunc | std::ios::binary);
    os << "this is not a shared object";
    os.close();
    ASSERT_EQ(std::rename(tmp.c_str(), art.so_path.c_str()), 0);
  }

  const jit::CompileStats before = jit::stats_snapshot();
  const IsolatedJitBackend backend(gpu, fast_options());
  const KernelMeasurement m = backend.measure(s);
  // The dlopen failure was healed in-line: evict, recompile once, retry.
  EXPECT_TRUE(m.ok) << m.fail_reason;
  EXPECT_GT(m.time_s, 0.0);
  const jit::CompileStats d = jit::stats_snapshot().since(before);
  EXPECT_GE(d.tus_compiled, 1);
}

// ---- engine chaos flood -----------------------------------------------------

TEST(Sandbox, EngineSurvivesChaosFloodWithAccountingIntact) {
  if (const std::string why = sandbox_skip_reason(); !why.empty()) {
    GTEST_SKIP() << why;
  }
  // Distinct shapes so each chain's fault mode targets it (the fault
  // seam matches on chain_cache_key, which folds shape + epilogues).
  const ChainSpec ok1("chaos-ok", 2, 96, {48, 96, 48},
                      {Epilogue::Gelu, Epilogue::None});
  const ChainSpec ok2("chaos-ok2", 1, 96, {48, 96, 48},
                      {Epilogue::Gelu, Epilogue::None});
  const ChainSpec segv("chaos-segv", 1, 64, {32, 64, 32});
  const ChainSpec kill("chaos-kill", 1, 80, {40, 80, 40});
  const ChainSpec hang("chaos-hang", 1, 32, {16, 32, 16});
  const ChainSpec garbage("chaos-garbage", 1, 48, {24, 48, 24});

  const ScopedEnv fault("MCFUSER_JIT_FAULT",
                        "segv@" + chain_cache_key(segv) + ",kill@" +
                            chain_cache_key(kill) + ",hang@" +
                            chain_cache_key(hang) + ",garbage@" +
                            chain_cache_key(garbage));
  const ScopedEnv deadline("MCFUSER_SANDBOX_DEADLINE_S", "0.6");
  const ScopedEnv workers("MCFUSER_SANDBOX_WORKERS", "2");
  const ScopedEnv retries("MCFUSER_SANDBOX_RETRIES", "0");

  FusionEngineOptions opts;
  opts.backend = "jit-isolated";
  opts.jobs = 2;
  opts.tuner.population = 8;
  opts.tuner.topk = 2;
  opts.tuner.min_generations = 1;
  opts.tuner.max_generations = 2;
  const sandbox::WorkerStats before = sandbox::stats_snapshot();
  FusionEngine engine(unique_gpu("chaos"), opts);

  // Flood: every ticket is in flight at once; two of the six chains are
  // healthy and must complete Ok REGARDLESS of the carnage around them.
  std::vector<FusionTicket> tickets;
  for (const ChainSpec* c : {&ok1, &segv, &kill, &hang, &garbage, &ok2}) {
    tickets.push_back(engine.submit(*c));
  }
  for (auto& t : tickets) t.wait();

  const FusionResult& r_ok1 = tickets[0].get();
  const FusionResult& r_segv = tickets[1].get();
  const FusionResult& r_kill = tickets[2].get();
  const FusionResult& r_hang = tickets[3].get();
  const FusionResult& r_garbage = tickets[4].get();
  const FusionResult& r_ok2 = tickets[5].get();

  EXPECT_EQ(r_ok1.status, FusionStatus::Ok) << r_ok1.reason;
  EXPECT_EQ(r_ok2.status, FusionStatus::Ok) << r_ok2.reason;
  EXPECT_GT(r_ok1.time_s(), 0.0);

  EXPECT_EQ(r_segv.status, FusionStatus::WorkerCrashed) << r_segv.reason;
  EXPECT_NE(r_segv.reason.find("SIGSEGV"), std::string::npos) << r_segv.reason;
  EXPECT_EQ(r_kill.status, FusionStatus::WorkerCrashed) << r_kill.reason;
  EXPECT_NE(r_kill.reason.find("SIGKILL"), std::string::npos) << r_kill.reason;
  EXPECT_EQ(r_hang.status, FusionStatus::WorkerTimeout) << r_hang.reason;
  EXPECT_NE(r_hang.reason.find("deadline"), std::string::npos) << r_hang.reason;
  EXPECT_EQ(r_garbage.status, FusionStatus::MeasureFailed) << r_garbage.reason;
  EXPECT_NE(r_garbage.reason.find("non-finite"), std::string::npos)
      << r_garbage.reason;

  // Accounting identity: every submission landed in exactly one terminal
  // bucket, and the worker-health mirror saw the carnage.
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.rejected +
                                 stats.cancelled + stats.deadline_exceeded);
  const sandbox::WorkerStats d = sandbox::stats_snapshot().since(before);
  EXPECT_GE(d.crashes, 2);
  EXPECT_GE(d.timeouts, 1);
  EXPECT_GE(d.spawned, 1);
  EXPECT_GE(stats.worker_crashes, static_cast<std::uint64_t>(d.crashes));
}

}  // namespace
}  // namespace mcf
