// JIT module lifecycle: refcounted dlopen handles stay bounded by the
// kernel cap under churn, eviction mid-execution is safe (an in-flight
// run pins its module), stale on-disk artifacts heal with one recompile,
// multicore run_native is bit-identical for every thread count, and the
// opened == open + closed accounting identity holds across the stats
// surfaces (CompileStats, EngineStats, GraphFusionReport::to_json).
#include "exec/jit.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "exec/interpreter.hpp"
#include "exec/program.hpp"
#include "gpu/spec.hpp"
#include "ir/expr.hpp"
#include "tensor/tensor.hpp"

namespace mcf {
namespace {

namespace fs = std::filesystem;

/// Static storage: the Schedule keeps a ChainSpec pointer.
const ChainSpec& gelu_chain() {
  static const ChainSpec c("jitlc-gelu", 2, 96, {48, 96, 48},
                           {Epilogue::Gelu, Epilogue::None});
  return c;
}

Schedule gelu_schedule() {
  const ChainSpec& c = gelu_chain();
  return build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                        std::vector<std::int64_t>{32, 16, 32, 16});
}

/// A gpu key no other process or (persisted) cache run ever used, so
/// "this resolve is a fresh compile" stays assertable over a warm cache.
std::string unique_key(const char* prefix) {
  std::random_device rd;
  return std::string(prefix) + "-" + std::to_string(::getpid()) + "-" +
         std::to_string((static_cast<std::uint64_t>(rd()) << 32) ^ rd());
}

/// The environment-latched production cap (MCFUSER_JIT_KERNEL_CAP
/// default) — what set_kernel_cap_for_testing must be restored to.
constexpr std::size_t kDefaultCap = 4096;

struct InputSet {
  Tensor a;
  std::vector<Tensor> w;
  InputSet()
      : a(Shape{gelu_chain().batch(), gelu_chain().m(),
                gelu_chain().inner().front()}) {
    const ChainSpec& c = gelu_chain();
    a.fill_random(501);
    for (int op = 0; op < c.num_ops(); ++op) {
      Tensor t(Shape{c.batch(), c.inner()[static_cast<std::size_t>(op)],
                     c.inner()[static_cast<std::size_t>(op) + 1]});
      t.fill_random(502 + static_cast<std::uint64_t>(op));
      w.push_back(std::move(t));
    }
  }
  [[nodiscard]] Tensor out() const {
    const ChainSpec& c = gelu_chain();
    return Tensor(Shape{c.batch(), c.m(), c.inner().back()});
  }
};

/// Redirects the on-disk kernel cache to a private temp dir for the
/// healing tests (so deleting artifacts can't race other tests sharing
/// the user-level cache) and restores the environment on destruction.
class ScopedCacheDir {
 public:
  ScopedCacheDir() {
    char tmpl[] = "/tmp/mcf-jit-lifecycle-XXXXXX";
    char* got = ::mkdtemp(tmpl);
    dir_ = (got != nullptr) ? got : "/tmp";
    if (const char* old = std::getenv("MCFUSER_JIT_CACHE_DIR")) old_ = old;
    ::setenv("MCFUSER_JIT_CACHE_DIR", dir_.c_str(), 1);
  }
  ~ScopedCacheDir() {
    if (old_.empty()) {
      ::unsetenv("MCFUSER_JIT_CACHE_DIR");
    } else {
      ::setenv("MCFUSER_JIT_CACHE_DIR", old_.c_str(), 1);
    }
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::string old_;
};

/// Every tu_*.so currently published in `dir`.
std::vector<fs::path> shared_objects(const std::string& dir) {
  std::vector<fs::path> out;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    if (e.path().extension() == ".so") out.push_back(e.path());
  }
  return out;
}

TEST(JitLifecycle, ChurnKeepsOpenModulesBoundedByKernelCap) {
  if (!jit::detect_toolchain().ok()) {
    GTEST_SKIP() << "jit unavailable: " << jit::detect_toolchain().reason;
  }
  const jit::Toolchain tc = jit::detect_toolchain();
  const Schedule s = gelu_schedule();

  // 12 distinct gpu keys through a 4-entry registry: every wave of
  // resolves evicts, and each eviction must dlclose (nothing else holds
  // the module).  256 iterations = the issue's churn chain.
  constexpr std::size_t kCap = 4;
  std::vector<std::string> keys;
  for (int i = 0; i < 12; ++i) {
    keys.push_back(unique_key(("churn-" + std::to_string(i)).c_str()));
  }
  jit::set_kernel_cap_for_testing(kCap);
  const jit::CompileStats before = jit::stats_snapshot();
  for (int it = 0; it < 256; ++it) {
    std::string err;
    const jit::ResolvedKernel rk = jit::resolve_kernel(
        s, keys[static_cast<std::size_t>(it) % keys.size()], tc, &err);
    ASSERT_TRUE(rk.ok()) << err;
    // rk's module reference drops here; the registry entry (if still
    // resident) is the only remaining owner.
  }
  const jit::CompileStats after = jit::stats_snapshot();
  jit::set_kernel_cap_for_testing(kDefaultCap);

  // Cycling 12 keys through 4 slots must have closed modules...
  EXPECT_GT(after.modules_closed, before.modules_closed);
  // ...and the resident set never outgrows the cap (plus whatever this
  // process already had open before the churn).
  EXPECT_LE(after.modules_open,
            before.modules_open + static_cast<std::int64_t>(kCap));
  // Absolute accounting identity.
  EXPECT_EQ(after.modules_opened, after.modules_open + after.modules_closed);
}

TEST(JitLifecycle, EvictionDuringExecutionIsSafe) {
  if (!jit::detect_toolchain().ok()) {
    GTEST_SKIP() << "jit unavailable: " << jit::detect_toolchain().reason;
  }
  const jit::Toolchain tc = jit::detect_toolchain();
  const Schedule s = gelu_schedule();
  const InputSet in;
  Tensor ref = in.out();
  (void)Interpreter(s).run(in.a, in.w, ref);

  // The kernel handle pins its module; a cap-1 registry plus a churner
  // thread then guarantees the kernel's REGISTRY entry is evicted while
  // runs are in flight.  The run must keep executing the mapped code
  // and producing correct output — the dlclose happens only when this
  // JitKernel goes away.
  JitKernel kernel(s, unique_key("evict-victim"));
  ASSERT_TRUE(kernel.ok()) << kernel.error();
  jit::set_kernel_cap_for_testing(1);

  std::atomic<bool> stop{false};
  std::thread churner([&] {
    const std::string k1 = unique_key("evict-churn-a");
    const std::string k2 = unique_key("evict-churn-b");
    while (!stop.load(std::memory_order_relaxed)) {
      std::string err;
      (void)jit::resolve_kernel(s, k1, tc, &err);
      (void)jit::resolve_kernel(s, k2, tc, &err);
    }
  });

  Tensor out = in.out();
  for (int i = 0; i < 50; ++i) {
    kernel.run(in.a, in.w, out);
    ASSERT_TRUE(allclose(out, ref, 1e-4, 1e-5))
        << "iteration " << i << ": max rel diff " << max_rel_diff(out, ref);
  }
  stop.store(true, std::memory_order_relaxed);
  churner.join();
  jit::set_kernel_cap_for_testing(kDefaultCap);
}

TEST(JitLifecycle, DeletedSharedObjectHealsWithOneRecompile) {
  if (!jit::detect_toolchain().ok()) {
    GTEST_SKIP() << "jit unavailable: " << jit::detect_toolchain().reason;
  }
  const jit::Toolchain tc = jit::detect_toolchain();
  const ScopedCacheDir cache;
  const Schedule s = gelu_schedule();
  const std::string key = unique_key("heal-deleted");

  std::string err;
  {
    const jit::ResolvedKernel rk = jit::resolve_kernel(s, key, tc, &err);
    ASSERT_TRUE(rk.ok()) << err;
  }
  const std::vector<fs::path> sos = shared_objects(cache.dir());
  ASSERT_FALSE(sos.empty());
  for (const fs::path& so : sos) fs::remove(so);
  // Drop the in-memory entry so the next resolve goes back to disk,
  // finds the idx pointing at a deleted .so, and must heal.
  jit::set_kernel_cap_for_testing(kDefaultCap);

  const jit::CompileStats s0 = jit::stats_snapshot();
  const jit::ResolvedKernel healed = jit::resolve_kernel(s, key, tc, &err);
  EXPECT_TRUE(healed.ok()) << err;
  const jit::CompileStats d = jit::stats_snapshot().since(s0);
  EXPECT_EQ(d.tus_compiled, 1);  // exactly one healing recompile
  EXPECT_EQ(d.failures, 0);      // and it is not negative-cached
}

TEST(JitLifecycle, TruncatedSharedObjectHealsWithOneRecompile) {
  if (!jit::detect_toolchain().ok()) {
    GTEST_SKIP() << "jit unavailable: " << jit::detect_toolchain().reason;
  }
  const jit::Toolchain tc = jit::detect_toolchain();
  const ScopedCacheDir cache;
  const Schedule s = gelu_schedule();
  const std::string key = unique_key("heal-truncated");

  std::string err;
  {
    const jit::ResolvedKernel rk = jit::resolve_kernel(s, key, tc, &err);
    ASSERT_TRUE(rk.ok()) << err;
  }
  const std::vector<fs::path> sos = shared_objects(cache.dir());
  ASSERT_FALSE(sos.empty());
  for (const fs::path& so : sos) {
    // Replace, don't truncate in place: an in-place truncation of a
    // still-mmapped object is OS-level UB (SIGBUS on the live mapping).
    // The realistic corruption — a crashed writer, a partial copy — is a
    // fresh inode with garbage bytes at the published path.
    fs::remove(so);
    std::ofstream garbage(so);
    garbage << "not an elf\n";
  }
  jit::set_kernel_cap_for_testing(kDefaultCap);

  const jit::CompileStats s0 = jit::stats_snapshot();
  const jit::ResolvedKernel healed = jit::resolve_kernel(s, key, tc, &err);
  EXPECT_TRUE(healed.ok()) << err;
  const jit::CompileStats d = jit::stats_snapshot().since(s0);
  EXPECT_EQ(d.tus_compiled, 1);
  EXPECT_EQ(d.failures, 0);
}

TEST(JitLifecycle, RunNativeIsBitIdenticalForEveryThreadCount) {
  const ChainSpec& c = gelu_chain();
  const CompiledKernel kernel(gelu_schedule(), a100());
  ASSERT_TRUE(kernel.ok()) << kernel.error();
  const InputSet in;

  if (!jit::detect_toolchain().ok()) {
    GTEST_SKIP() << "jit unavailable: " << jit::detect_toolchain().reason;
  }
  Tensor base = in.out();
  ASSERT_TRUE(kernel.run_native(in.a, in.w, base, 1));
  for (const int t : {2, 3, 4, 7, 16}) {
    Tensor out = in.out();
    ASSERT_TRUE(kernel.run_native(in.a, in.w, out, t));
    // Chunked fan-out must not change the result AT ALL: each block's
    // arithmetic is unchanged, only which thread runs it moves.
    EXPECT_TRUE(allclose(out, base, 0.0, 0.0))
        << "threads=" << t << " for chain " << c.name();
  }
}

TEST(JitLifecycle, AccountingIdentityAcrossStatsSurfaces) {
  // CompileStats: the absolute snapshot obeys opened == open + closed.
  const jit::CompileStats s = jit::stats_snapshot();
  EXPECT_EQ(s.modules_opened, s.modules_open + s.modules_closed);
  EXPECT_GE(s.modules_open, 0);

  // EngineStats mirrors the same gauges.
  const FusionEngine engine(a100());
  const EngineStats es = engine.stats();
  EXPECT_EQ(es.jit_modules_opened,
            static_cast<std::uint64_t>(es.jit_modules_open) +
                es.jit_modules_closed);

  // GraphFusionReport::to_json exposes them to dashboards.
  GraphFusionReport rep;
  rep.jit_compile = s;
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"modules_opened\":"), std::string::npos);
  EXPECT_NE(json.find("\"modules_open\":"), std::string::npos);
  EXPECT_NE(json.find("\"modules_closed\":"), std::string::npos);
}

}  // namespace
}  // namespace mcf
