// Pins every CompiledKernel constructor rejection message.  These
// strings are load-bearing API: the jit negative-cache stores them, the
// engine surfaces them as FusionResult::reason, and the verifier's
// skip_reason wording leans on the same taxonomy — a rewording here must
// be a conscious, test-visible decision.
#include "exec/program.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "dag/schedule_internal.hpp"
#include "gpu/spec.hpp"
#include "ir/expr.hpp"

namespace mcf {
namespace {

const ChainSpec& small_chain() {
  static const ChainSpec c =
      ChainSpec::gemm_chain("prog-err", 1, 128, 128, 64, 64);
  return c;
}
const ChainSpec& big_chain() {
  static const ChainSpec c =
      ChainSpec::gemm_chain("prog-err-big", 1, 512, 512, 512, 512);
  return c;
}

Schedule small_schedule() {
  const ChainSpec& c = small_chain();
  return build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                        std::vector<std::int64_t>{32, 32, 32, 32});
}

struct RejectionCase {
  const char* name;
  std::function<Schedule()> make;
  std::string expected_error;  ///< exact for fixed strings, prefix for smem
  bool exact;
};

TEST(CompiledKernelErrors, LoweringRejectionsArePinned) {
  const std::vector<RejectionCase> cases = {
      {"invalid placement",
       [] {
         Schedule s = small_schedule();
         ScheduleBuilderAccess::set_valid(s, false);
         return s;
       },
       "schedule has no legal statement placement", true},
      {"Rule-2 partial tiles",
       [] {
         Schedule s = small_schedule();
         ScheduleBuilderAccess::set_consume_complete(s, false);
         return s;
       },
       "schedule consumes partial tiles (Rule-2 structure)", true},
      {"smem overflow",
       [] {
         // 512-wide tiles of a 512^3 chain: the resident tiles alone
         // exceed any real per-block shared memory budget.
         const ChainSpec& c = big_chain();
         return build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                               std::vector<std::int64_t>{512, 512, 256, 256});
       },
       "shared memory exceeds per-block limit (", false},
  };
  for (const RejectionCase& rc : cases) {
    const CompiledKernel kernel(rc.make(), a100());
    EXPECT_FALSE(kernel.ok()) << rc.name;
    if (rc.exact) {
      EXPECT_EQ(kernel.error(), rc.expected_error) << rc.name;
    } else {
      EXPECT_EQ(kernel.error().rfind(rc.expected_error, 0), 0u)
          << rc.name << ": " << kernel.error();
    }
  }
}

// The smem message carries both sides of the comparison (actual > limit)
// so an overflowing schedule is diagnosable without re-running plan_smem.
TEST(CompiledKernelErrors, SmemMessageNamesBothBounds) {
  const ChainSpec& c = big_chain();
  const CompiledKernel kernel(
      build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                     std::vector<std::int64_t>{512, 512, 256, 256}),
      a100());
  ASSERT_FALSE(kernel.ok());
  const std::string& e = kernel.error();
  EXPECT_NE(e.find(" > " + std::to_string(a100().smem_per_block) + " bytes)"),
            std::string::npos)
      << e;
}

// A good schedule still passes — the table above pins rejections, not a
// blanket refusal.
TEST(CompiledKernelErrors, ValidScheduleStillAccepted) {
  const CompiledKernel kernel(small_schedule(), a100());
  EXPECT_TRUE(kernel.ok()) << kernel.error();
  EXPECT_EQ(kernel.error(), "");
}

}  // namespace
}  // namespace mcf
