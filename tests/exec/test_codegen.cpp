#include "exec/codegen.hpp"

#include <gtest/gtest.h>

#include "exec/program.hpp"

namespace mcf {
namespace {

ChainSpec chain() { return ChainSpec::gemm_chain("cg", 1, 512, 512, 256, 256); }

TEST(Codegen, EmitsKernelSkeleton) {
  const ChainSpec c = chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const std::string src = emit_kernel_source(s, a100());
  EXPECT_NE(src.find("@triton.jit"), std::string::npos);
  EXPECT_NE(src.find("tl.dot(smem_A, smem_B)"), std::string::npos);
  EXPECT_NE(src.find("tl.store(E_ptr"), std::string::npos);
  EXPECT_NE(src.find("tl.program_id"), std::string::npos);
}

TEST(Codegen, HoistedLoadAppearsBeforeLoop) {
  const ChainSpec c = chain();
  // Tk = K: Load(A) hoists to the function body before any loop.
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 256, 64, 64});
  const std::string src = emit_kernel_source(s, a100());
  const auto load_pos = src.find("smem_A = tl.load");
  const auto loop_pos = src.find("for n in range");
  ASSERT_NE(load_pos, std::string::npos);
  ASSERT_NE(loop_pos, std::string::npos);
  EXPECT_LT(load_pos, loop_pos);
}

TEST(Codegen, SoftmaxEpilogueAnnotated) {
  const ChainSpec c = ChainSpec::attention("cga", 4, 256, 256, 64, 64);
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const std::string src = emit_kernel_source(s, a100());
  EXPECT_NE(src.find("online-softmax"), std::string::npos);
}

TEST(Codegen, CoveredStoreAnnotated) {
  const ChainSpec c = chain();
  const Schedule s = build_schedule(c, make_flat_expr(c, {0, 2}, {1, 3}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  const std::string src = emit_kernel_source(s, a100());
  EXPECT_NE(src.find("covers all resident tiles of: h"), std::string::npos);
}

TEST(CompiledKernel, AcceptsValidSchedule) {
  const ChainSpec c = chain();
  CompiledKernel kernel(build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                       std::vector<std::int64_t>{64, 64, 64, 64}),
                        a100());
  EXPECT_TRUE(kernel.ok()) << kernel.error();
  EXPECT_GT(kernel.volume().total_bytes(), 0.0);
  EXPECT_GT(kernel.smem().total_bytes, 0);
}

TEST(CompiledKernel, RejectsPartialConsume) {
  const ChainSpec c = chain();
  CompiledKernel kernel(build_schedule(c, make_deep_expr(c, {0, 3, 1, 2}),
                                       std::vector<std::int64_t>{64, 64, 64, 64}),
                        a100());
  EXPECT_FALSE(kernel.ok());
  EXPECT_NE(kernel.error().find("Rule-2"), std::string::npos);
}

TEST(CompiledKernel, RejectsSmemOverflow) {
  // Giant tiles blow the per-block budget at lowering time.
  const ChainSpec c = ChainSpec::gemm_chain("big", 1, 2048, 2048, 1024, 1024);
  CompiledKernel kernel(
      build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                     std::vector<std::int64_t>{512, 512, 512, 512}),
      a100());
  EXPECT_FALSE(kernel.ok());
  EXPECT_NE(kernel.error().find("shared memory"), std::string::npos);
}

TEST(CompiledKernel, MeasureProducesTime) {
  const ChainSpec c = chain();
  CompiledKernel kernel(build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                       std::vector<std::int64_t>{64, 64, 64, 64}),
                        a100());
  ASSERT_TRUE(kernel.ok());
  const auto m = kernel.measure();
  EXPECT_TRUE(m.ok);
  EXPECT_GT(m.time_s, 0.0);
}

}  // namespace
}  // namespace mcf
