// JIT native-codegen backend: numeric agreement against the interpreter
// on gelu and attention chains, kernel-cache behaviour (hit on second
// compile, one TU per batch), and graceful fallback when no host
// compiler exists.
#include "exec/jit.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <random>

#include "exec/interpreter.hpp"
#include "exec/program.hpp"
#include "ir/expr.hpp"
#include "measure/backend.hpp"
#include "tensor/tensor.hpp"

namespace mcf {
namespace {

/// Chains the issue pins the agreement test on.  Static storage: the
/// Schedule keeps a ChainSpec pointer.
const ChainSpec& gelu_chain() {
  static const ChainSpec c("jit-gelu", 2, 96, {48, 96, 48},
                           {Epilogue::Gelu, Epilogue::None});
  return c;
}
const ChainSpec& attention_chain() {
  static const ChainSpec c = ChainSpec::attention("jit-attn", 2, 64, 64, 32, 32);
  return c;
}

/// A gpu key no other process or (persisted) cache run ever used: makes
/// "this resolve is a fresh compile" assertable even over a warm on-disk
/// cache (CI persists the cache dir across runs).
std::string unique_key(const char* prefix) {
  std::random_device rd;
  return std::string(prefix) + "-" + std::to_string(::getpid()) + "-" +
         std::to_string((static_cast<std::uint64_t>(rd()) << 32) ^ rd());
}

void run_both_and_compare(const Schedule& s) {
  const ChainSpec& c = s.chain();
  Tensor a(Shape{c.batch(), c.m(), c.inner().front()});
  a.fill_random(301);
  std::vector<Tensor> w;
  for (int op = 0; op < c.num_ops(); ++op) {
    Tensor t(Shape{c.batch(), c.inner()[static_cast<std::size_t>(op)],
                   c.inner()[static_cast<std::size_t>(op) + 1]});
    t.fill_random(302 + static_cast<std::uint64_t>(op));
    w.push_back(std::move(t));
  }
  Tensor out_interp(Shape{c.batch(), c.m(), c.inner().back()});
  Tensor out_jit(Shape{c.batch(), c.m(), c.inner().back()});
  (void)Interpreter(s).run(a, w, out_interp);

  JitKernel kernel(s, "a100");
  ASSERT_TRUE(kernel.ok()) << kernel.error();
  kernel.run(a, w, out_jit);
  // The issue's gate: <= 1e-4 relative tolerance (1e-5 absolute floor
  // for near-zero elements; jit uses FMA contraction, interp does not).
  EXPECT_TRUE(allclose(out_jit, out_interp, 1e-4, 1e-5))
      << c.name() << ": max rel diff " << max_rel_diff(out_jit, out_interp);
}

TEST(JitKernel, MatchesInterpreterOnGeluChain) {
  if (!jit::detect_toolchain().ok()) {
    GTEST_SKIP() << "jit unavailable: " << jit::detect_toolchain().reason;
  }
  const ChainSpec& c = gelu_chain();
  // Deep and flat expressions, divisible and fringe tiles.
  run_both_and_compare(build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                      std::vector<std::int64_t>{32, 16, 32, 16}));
  run_both_and_compare(build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                      std::vector<std::int64_t>{48, 48, 48, 48}));
  run_both_and_compare(build_schedule(c, make_flat_expr(c, {0, 2}, {1, 3}),
                                      std::vector<std::int64_t>{32, 16, 32, 48}));
}

TEST(JitKernel, MatchesInterpreterOnAttentionChain) {
  if (!jit::detect_toolchain().ok()) {
    GTEST_SKIP() << "jit unavailable: " << jit::detect_toolchain().reason;
  }
  const ChainSpec& c = attention_chain();
  run_both_and_compare(build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                      std::vector<std::int64_t>{32, 32, 32, 32}));
  run_both_and_compare(build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                      std::vector<std::int64_t>{16, 32, 16, 32}));
}

TEST(JitKernel, SecondCompileIsACacheHit) {
  if (!jit::detect_toolchain().ok()) {
    GTEST_SKIP() << "jit unavailable: " << jit::detect_toolchain().reason;
  }
  const ChainSpec& c = gelu_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{48, 16, 48, 16});
  const std::string gpu_key = unique_key("cache-hit-test");

  const jit::CompileStats s0 = jit::stats_snapshot();
  JitKernel first(s, gpu_key);
  ASSERT_TRUE(first.ok()) << first.error();
  const jit::CompileStats after_first = jit::stats_snapshot().since(s0);
  EXPECT_EQ(after_first.kernels_compiled, 1);
  EXPECT_EQ(after_first.tus_compiled, 1);
  EXPECT_GT(after_first.compile_wall_s, 0.0);

  JitKernel second(s, gpu_key);
  ASSERT_TRUE(second.ok()) << second.error();
  const jit::CompileStats after_second =
      jit::stats_snapshot().since(s0).since(after_first);
  EXPECT_EQ(after_second.kernels_compiled, 0);
  EXPECT_EQ(after_second.tus_compiled, 0);
  EXPECT_EQ(after_second.cache_hits(), 1);
}

TEST(JitKernel, BatchCompilesOneTranslationUnitPerWave) {
  if (!jit::detect_toolchain().ok()) {
    GTEST_SKIP() << "jit unavailable: " << jit::detect_toolchain().reason;
  }
  GpuSpec gpu = a100();
  gpu.name = unique_key("batch-tu-test");
  const JitBackend backend(gpu);
  ASSERT_TRUE(backend.jit_active());

  const ChainSpec& c = gelu_chain();
  const Schedule s1 = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                     std::vector<std::int64_t>{32, 16, 32, 16});
  const Schedule s2 = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                     std::vector<std::int64_t>{48, 48, 48, 48});
  const Schedule s3 = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                     std::vector<std::int64_t>{96, 16, 96, 48});
  const std::vector<const Schedule*> wave = {&s1, &s2, &s3};

  const jit::CompileStats s0 = jit::stats_snapshot();
  backend.prepare_batch(wave);
  const jit::CompileStats prep = jit::stats_snapshot().since(s0);
  EXPECT_EQ(prep.tus_compiled, 1);  // the whole wave in ONE invocation
  EXPECT_EQ(prep.kernels_compiled, 3);

  // The wave's measure() calls then resolve without compiling.
  for (const Schedule* s : wave) {
    const KernelMeasurement m = backend.measure(*s);
    EXPECT_TRUE(m.ok) << m.fail_reason;
    EXPECT_GT(m.time_s, 0.0);
  }
  const jit::CompileStats meas = jit::stats_snapshot().since(s0).since(prep);
  EXPECT_EQ(meas.tus_compiled, 0);
  EXPECT_EQ(meas.kernels_compiled, 0);
  EXPECT_EQ(meas.cache_hits(), 3);
}

TEST(JitBackend, FallsBackToInterpreterWhenCompilerMissing) {
  // Whatever the environment, a jit backend constructed while
  // MCFUSER_JIT_CXX points nowhere must degrade to the interpreter and
  // still satisfy the measurement contract.
  ::setenv("MCFUSER_JIT_CXX", "/nonexistent/not-a-compiler", 1);
  const JitBackend backend(a100());
  ::unsetenv("MCFUSER_JIT_CXX");

  EXPECT_FALSE(backend.jit_active());
  EXPECT_FALSE(backend.fallback_reason().empty());

  const ChainSpec& c = gelu_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{32, 16, 32, 16});
  const jit::CompileStats s0 = jit::stats_snapshot();
  const KernelMeasurement m = backend.measure(s);
  EXPECT_TRUE(m.ok) << m.fail_reason;
  EXPECT_GT(m.time_s, 0.0);
  EXPECT_EQ(m.n_blocks, s.num_blocks());
  // Nothing was compiled (or even attempted) on the fallback path.
  const jit::CompileStats delta = jit::stats_snapshot().since(s0);
  EXPECT_EQ(delta.tus_compiled, 0);
  EXPECT_EQ(delta.failures, 0);
}

TEST(CompiledKernel, NativeRunMatchesInterpreterRun) {
  // The deploy-side surface: a fused kernel out of the engine pipeline
  // executes natively (or reports false so callers fall back to run()).
  const ChainSpec& c = attention_chain();
  const CompiledKernel kernel(
      build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                     std::vector<std::int64_t>{32, 32, 32, 32}),
      a100());
  ASSERT_TRUE(kernel.ok()) << kernel.error();

  Tensor a(Shape{c.batch(), c.m(), c.inner().front()});
  a.fill_random(401);
  std::vector<Tensor> w;
  for (int op = 0; op < c.num_ops(); ++op) {
    Tensor t(Shape{c.batch(), c.inner()[static_cast<std::size_t>(op)],
                   c.inner()[static_cast<std::size_t>(op) + 1]});
    t.fill_random(402 + static_cast<std::uint64_t>(op));
    w.push_back(std::move(t));
  }
  Tensor out_interp(Shape{c.batch(), c.m(), c.inner().back()});
  Tensor out_native(Shape{c.batch(), c.m(), c.inner().back()});
  (void)kernel.run(a, w, out_interp);

  if (!jit::detect_toolchain().ok()) {
    EXPECT_FALSE(kernel.run_native(a, w, out_native));
    GTEST_SKIP() << "jit unavailable: " << jit::detect_toolchain().reason;
  }
  ASSERT_TRUE(kernel.run_native(a, w, out_native));
  EXPECT_TRUE(allclose(out_native, out_interp, 1e-4, 1e-5))
      << "max rel diff " << max_rel_diff(out_native, out_interp);
}

TEST(JitBackend, InfeasibleScheduleFailsBeforeCompilation) {
  const JitBackend backend(a100());
  static const ChainSpec c =
      ChainSpec::gemm_chain("jit-too-big", 1, 512, 512, 256, 256);
  const Schedule s =
      build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                     std::vector<std::int64_t>{512, 512, 256, 256});
  const jit::CompileStats s0 = jit::stats_snapshot();
  const KernelMeasurement m = backend.measure(s);
  EXPECT_FALSE(m.ok);
  EXPECT_FALSE(m.fail_reason.empty());
  const jit::CompileStats delta = jit::stats_snapshot().since(s0);
  EXPECT_EQ(delta.tus_compiled, 0);
  EXPECT_EQ(delta.kernels_compiled, 0);
}

TEST(JitCompile, TimeoutKillsHungCompiler) {
  // A wedged compiler process (distcc stall, NFS hang, miscompiled
  // plugin) must not hang the tuner forever: the invocation is killed at
  // MCFUSER_JIT_COMPILE_TIMEOUT_S and surfaced as a compile failure.
  if (!jit::detect_toolchain().ok()) {
    GTEST_SKIP() << "jit unavailable: " << jit::detect_toolchain().reason;
  }
  const std::string script =
      "/tmp/mcfuser-hung-cxx-" + std::to_string(::getpid()) + ".sh";
  {
    std::ofstream os(script);
    os << "#!/bin/sh\nsleep 600\n";
  }
  ::chmod(script.c_str(), 0755);
  ::setenv("MCFUSER_JIT_CXX", script.c_str(), 1);
  ::setenv("MCFUSER_JIT_COMPILE_TIMEOUT_S", "1", 1);

  const ChainSpec& c = gelu_chain();
  const Schedule s = build_schedule(c, make_deep_expr(c, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{32, 16, 32, 16});
  const auto t0 = std::chrono::steady_clock::now();
  std::string error;
  const jit::ResolvedKernel rk =
      jit::resolve_kernel(s, unique_key("hung-cxx"), jit::detect_toolchain(),
                          &error);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ::unsetenv("MCFUSER_JIT_CXX");
  ::unsetenv("MCFUSER_JIT_COMPILE_TIMEOUT_S");
  ::unlink(script.c_str());

  EXPECT_FALSE(rk.ok());
  EXPECT_NE(error.find("timed out"), std::string::npos) << error;
  EXPECT_LT(wall, 60.0);  // killed at ~1s, nowhere near the 600s sleep
}

}  // namespace
}  // namespace mcf
