// GeLU-epilogue chains (extension): fused numerics vs reference across
// expressions and tile sizes, and MCFuser end-to-end on the token-mixing
// MLP shape.
#include <gtest/gtest.h>

#include "dag/volume.hpp"
#include "exec/interpreter.hpp"
#include "search/mcfuser.hpp"
#include "tensor/ops.hpp"

namespace mcf {
namespace {

ChainSpec gelu_chain(std::int64_t batch, std::int64_t m, std::int64_t n,
                     std::int64_t k, std::int64_t h) {
  return ChainSpec("gelu", batch, m, {k, n, h},
                   {Epilogue::Gelu, Epilogue::None});
}

struct GeluCase {
  bool flat;
  std::vector<std::int64_t> tiles;
};

class GeluChainProperty : public testing::TestWithParam<GeluCase> {};

TEST_P(GeluChainProperty, MatchesReferenceAndCounts) {
  const GeluCase& p = GetParam();
  const ChainSpec chain = gelu_chain(2, 96, 96, 48, 48);
  const TileExpr expr = p.flat ? make_flat_expr(chain, {0, 2}, {1, 3})
                               : make_deep_expr(chain, {0, 3, 2, 1});
  const Schedule s = build_schedule(chain, expr, p.tiles);
  ASSERT_TRUE(s.valid());
  if (!s.consume_complete()) GTEST_SKIP();

  Tensor a(Shape{2, 96, 48});
  Tensor b(Shape{2, 48, 96});
  Tensor d(Shape{2, 96, 48});
  a.fill_random(201);
  b.fill_random(202);
  d.fill_random(203);
  std::vector<Tensor> w;
  w.push_back(std::move(b));
  w.push_back(std::move(d));
  Tensor out(Shape{2, 96, 48});
  const ExecutionCounters counters = Interpreter(s).run(a, w, out);

  Tensor ref(Shape{2, 96, 48});
  ops::gemm_chain_reference(a, w[0], w[1], ref, ops::ChainEpilogue::Gelu);
  EXPECT_TRUE(allclose(out, ref, 1e-3, 1e-4))
      << "max diff " << max_abs_diff(out, ref);

  const VolumeReport vol = analyze_volume(s);
  EXPECT_DOUBLE_EQ(counters.epilogue_flops, vol.epilogue_flops);
  EXPECT_GT(vol.epilogue_flops, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeluChainProperty,
    testing::Values(GeluCase{false, {32, 16, 32, 16}},
                    GeluCase{false, {48, 48, 48, 48}},
                    GeluCase{false, {96, 16, 96, 48}},
                    GeluCase{true, {32, 16, 32, 48}},
                    GeluCase{true, {48, 48, 48, 48}}));

TEST(GeluChain, McfuserFusesTokenMlpShape) {
  // Mixer-Base token-mixing MLP: [768,196] x [196,384] -> GeLU -> x [384,196].
  const GpuSpec gpu = a100();
  const ChainSpec chain = ChainSpec("token_mlp", 1, 768, {196, 384, 196},
                                    {Epilogue::Gelu, Epilogue::None});
  const FusionResult r = MCFuser(gpu).fuse(chain);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.kernel->smem().total_bytes, gpu.smem_per_block);
}

TEST(GeluChain, GeluCostsMoreThanRelu) {
  const ChainSpec g = gelu_chain(1, 128, 128, 64, 64);
  const ChainSpec r("relu", 1, 128, {64, 128, 64},
                    {Epilogue::Relu, Epilogue::None});
  const std::vector<std::int64_t> tiles = {64, 64, 64, 64};
  const VolumeReport vg =
      analyze_volume(build_schedule(g, make_deep_expr(g, {0, 3, 2, 1}), tiles));
  const VolumeReport vr =
      analyze_volume(build_schedule(r, make_deep_expr(r, {0, 3, 2, 1}), tiles));
  EXPECT_GT(vg.epilogue_flops, vr.epilogue_flops);
}

TEST(GeluChain, CodegenAnnotates) {
  const ChainSpec chain = gelu_chain(1, 128, 128, 64, 64);
  const Schedule s = build_schedule(chain, make_deep_expr(chain, {0, 3, 2, 1}),
                                    std::vector<std::int64_t>{64, 64, 64, 64});
  // Rendering lives in exec/codegen; the pseudo form at least names GeLU
  // via the epilogue in the chain description.
  EXPECT_EQ(chain.epilogue(0), Epilogue::Gelu);
  EXPECT_NE(chain.to_string().find("gelu"), std::string::npos);
  EXPECT_TRUE(s.valid());
}

}  // namespace
}  // namespace mcf
