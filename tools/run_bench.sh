#!/usr/bin/env bash
# Tier-1 verification plus the tuning-throughput benchmark.
#
#   tools/run_bench.sh [build-dir]
#
# Builds everything, runs the full ctest suite, then runs
# bench_tuning_throughput and copies BENCH_tuning_throughput.json (stable
# schema, see docs/performance.md) to the repository root so the tuning
# trajectory is tracked in-tree.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

# The bench writes its CSVs/JSON into the working directory.
(cd "$build_dir" && ./bench_tuning_throughput)
cp "$build_dir/BENCH_tuning_throughput.json" "$repo_root/BENCH_tuning_throughput.json"
echo "BENCH_tuning_throughput.json updated at $repo_root"
