#!/usr/bin/env bash
# Static concurrency gate (the CI `lint` job; see .github/workflows/ci.yml).
#
#  0. tools/check_banned_patterns.sh — grep-level ban on raw std::mutex /
#     getenv / popen outside their sanctioned wrapper files (explicit
#     allowlist in tools/lint_allowlist.txt).
#  1. clang++ -Wthread-safety -Werror over every src/ translation unit.
#     The Clang thread-safety analysis statically verifies the lock
#     discipline declared through src/support/thread_annotations.hpp
#     (MCF_GUARDED_BY / MCF_REQUIRES / ...).  gcc compiles those macros
#     away to nothing, so this pass is the only place the annotations
#     are actually *checked* — a gcc-only workflow builds annotated code
#     fine but never verifies it.
#  2. clang-tidy over the same units (configuration in .clang-tidy at
#     the repo root), driven by a compile_commands.json produced from a
#     test/bench/example-free configure.
#
# Requires clang++ (and optionally clang-tidy) on PATH; override with
# CLANGXX= / CLANG_TIDY=.  See docs/concurrency.md for the locking
# model these checks enforce.
set -euo pipefail
cd "$(dirname "$0")/.."

CLANGXX="${CLANGXX:-clang++}"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
BUILD_DIR="${BUILD_DIR:-build-lint}"

# 0. Banned-pattern lint: raw std::mutex / getenv / popen outside their
#    sanctioned wrappers (allowlist: tools/lint_allowlist.txt).  Cheapest
#    gate first — pure grep, no toolchain.
tools/check_banned_patterns.sh

if ! command -v "$CLANGXX" >/dev/null 2>&1; then
  echo "run_lint.sh: $CLANGXX not found — the thread-safety analysis is clang-only" >&2
  exit 2
fi

# The flags the library itself builds with (CMakeLists.txt) plus the
# thread-safety analysis.  -fsyntax-only: this is a gate, not a build.
FLAGS=(-std=c++20 -Isrc -Wall -Wextra -Wthread-safety -Werror
       '-DMCF_JIT_CXX="c++"' -fsyntax-only)

mapfile -t TUS < <(find src -name '*.cpp' | sort)
status=0
for tu in "${TUS[@]}"; do
  if ! "$CLANGXX" "${FLAGS[@]}" "$tu"; then
    status=1
  fi
done
if [[ $status -ne 0 ]]; then
  echo "run_lint.sh: clang -Wthread-safety FAILED" >&2
  exit 1
fi
echo "run_lint.sh: clang -Wthread-safety clean (${#TUS[@]} translation units)"

if command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  cmake -B "$BUILD_DIR" -S . \
        -DCMAKE_CXX_COMPILER="$CLANGXX" \
        -DMCFUSER_BUILD_TESTS=OFF -DMCFUSER_BUILD_BENCH=OFF \
        -DMCFUSER_BUILD_EXAMPLES=OFF -DMCFUSER_BUILD_TOOLS=OFF >/dev/null
  "$CLANG_TIDY" -p "$BUILD_DIR" "${TUS[@]}"
  echo "run_lint.sh: clang-tidy clean"
else
  echo "run_lint.sh: $CLANG_TIDY not found — skipping tidy checks" >&2
fi
