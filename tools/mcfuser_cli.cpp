// mcfuser — command-line driver for the fusion engine.
//
//   mcfuser fuse    --m 512 --n 256 --k 64 --h 64 [--batch N]
//                   [--attention | --gelu | --relu] [--gpu a100|rtx3080]
//                   [--backend=sim|interp|cached-sim]
//                   [--isolation worker|none]
//                   [--cache FILE] [--emit] [--pseudo] [--json]
//   mcfuser fuse    --graph bert-small|bert-base|bert-large|mixer-small|
//                           mixer-base [--seq L] [--jobs N] [--max-queue N]
//                           [--deadline S] [--json]
//                   whole-graph batch fusion: partition, digest-dedup,
//                   tune distinct chains concurrently (bounded admission
//                   queue, queue-wait deadline), report
//   mcfuser compare <same shape flags>     run every baseline on the chain
//   mcfuser suite   gemm | attention       paper Table II / III sweep
//   mcfuser verify  [--family gemm|attention|bert|mixer|all]
//                   [--max-candidates N] [--mutants N] [--seed N]
//                   [--gpu NAME] [--json]
//                   static bounds-safety sweep (src/verify/): prove every
//                   tuner candidate of the workload matrix in-bounds, and
//                   check the seeded mutation corpus is 100% flagged;
//                   exit 0 only when both hold
//   mcfuser info    [--gpu NAME]           GPU model parameters
//   mcfuser serve   --socket PATH and/or --port N   MCFN socket service
//                   over the engine; SIGTERM/SIGINT drains gracefully
//                   (exit 0 only when the EngineStats accounting identity
//                   held through the drain)
//   mcfuser fuse    --connect ENDPOINT <shape flags>   client mode: tune
//                   the chain through a running server (--stats fetches
//                   the server's stats JSON instead)
//
// Unknown flags are rejected with a usage synopsis and exit code 2.
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "baselines/ansor_like.hpp"
#include "baselines/bolt_like.hpp"
#include "baselines/chimera_like.hpp"
#include "baselines/flash_like.hpp"
#include "baselines/unfused.hpp"
#include "engine/engine.hpp"
#include "exec/codegen.hpp"
#include "exec/jit.hpp"
#include "graph/bert.hpp"
#include "graph/mixer.hpp"
#include "measure/backend.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "search/space.hpp"
#include "support/table.hpp"
#include "verify/mutate.hpp"
#include "verify/verify.hpp"
#include "workloads/suites.hpp"

namespace {

using namespace mcf;

struct Args {
  std::string command;
  std::string positional;
  /// Tokens parse() could not place: single-dash flags ("-m"), extra
  /// positionals.  Non-empty => usage error.
  std::vector<std::string> stray;
  std::map<std::string, std::string> flags;

  [[nodiscard]] std::int64_t num(const std::string& key, std::int64_t dflt) const {
    const auto it = flags.find(key);
    return it == flags.end() ? dflt : std::stoll(it->second);
  }
  [[nodiscard]] double dbl(const std::string& key, double dflt) const {
    const auto it = flags.find(key);
    return it == flags.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
  }
  [[nodiscard]] std::string str(const std::string& key, std::string dflt) const {
    const auto it = flags.find(key);
    return it == flags.end() ? std::move(dflt) : it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return flags.count(key) != 0;
  }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) == 0) {
      // Both --key value and --key=value spellings are accepted.  A next
      // token that looks like a negative number ("-4") is a value, not a
      // flag — so `--m -4` reaches ChainSpec validation instead of being
      // silently rewritten to a boolean.
      const std::string body = tok.substr(2);
      const auto is_value = [&](const char* s) {
        return s[0] != '-' ||
               (s[1] != '\0' && std::isdigit(static_cast<unsigned char>(s[1])));
      };
      if (const auto eq = body.find('='); eq != std::string::npos) {
        args.flags[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && is_value(argv[i + 1])) {
        args.flags[body] = argv[++i];
      } else {
        args.flags[body] = "1";
      }
    } else if (tok.size() > 1 && tok[0] == '-' &&
               !std::isdigit(static_cast<unsigned char>(tok[1]))) {
      // Single-dash spelling of a flag ("-m"): a near-certain typo for
      // "--m"; collected for rejection rather than silently ignored.
      args.stray.push_back(std::move(tok));
    } else if (args.positional.empty()) {
      args.positional = tok;
    } else {
      args.stray.push_back(std::move(tok));
    }
  }
  return args;
}

/// Registered measurement backends, "|"-joined — the usage synopsis and
/// the --backend diagnostics enumerate the registry instead of a
/// hard-coded list, so a newly registered backend (e.g. a CUDA one) is
/// reachable and documented with zero CLI changes.
std::string backend_names_joined() {
  std::string out;
  for (const auto& n : BackendRegistry::instance().names()) {
    out += (out.empty() ? "" : "|") + n;
  }
  return out;
}

int usage() {
  const std::string backends = backend_names_joined();
  std::fprintf(stderr,
               "usage: mcfuser <fuse|compare|suite|verify|info|serve> [flags]\n"
               "  fuse    --m M --n N --k K --h H [--batch B] "
               "[--attention|--gelu|--relu] [--gpu NAME] "
               "[--backend=%s] [--isolation worker|none] "
               "[--cache FILE] [--emit] "
               "[--pseudo] [--json]\n"
               "  fuse    --graph bert-small|bert-base|bert-large|"
               "mixer-small|mixer-base [--seq L] [--jobs N] [--gpu NAME] "
               "[--backend NAME] [--isolation worker|none] "
               "[--max-queue N] [--deadline S] [--json]\n"
               "  fuse    --connect ENDPOINT <shape flags> [--timeout S] "
               "[--retries N] [--stats] [--json]\n"
               "  compare <same shape flags> [--trials T]\n"
               "  suite   gemm|attention [--gpu NAME]\n"
               "  verify  [--family gemm|attention|bert|mixer|all] "
               "[--max-candidates N] [--mutants N] [--seed N] [--gpu NAME] "
               "[--json]\n"
               "  info    [--gpu NAME]\n"
               "  serve   [--socket PATH] [--port N] [--gpu NAME] "
               "[--backend NAME] [--isolation worker|none] [--jobs N] "
               "[--max-queue N] [--max-in-flight N] [--deadline S] "
               "[--max-conns N] [--io-timeout S] [--idle-timeout S] "
               "[--request-timeout S] [--drain-deadline S] [--json]\n",
               backends.c_str());
  return 2;
}

/// Rejects flags the command (and, for fuse, the mode) does not
/// understand — exit 2 + synopsis instead of silently ignoring them.
bool validate_flags(const Args& args) {
  static const std::set<std::string> kFuseChain = {
      "m",   "n",       "k",     "h",    "batch", "attention", "gelu",
      "relu", "gpu",    "backend", "cache", "emit", "pseudo",   "json",
      "isolation"};
  static const std::set<std::string> kFuseGraph = {
      "graph", "seq",       "jobs",     "gpu",
      "backend", "json",    "max-queue", "deadline", "isolation"};
  static const std::set<std::string> kFuseConnect = {
      "connect", "m",    "n",       "k",       "h",    "batch", "attention",
      "gelu",    "relu", "timeout", "retries", "stats", "json"};
  static const std::map<std::string, std::set<std::string>> kKnown = {
      {"compare",
       {"m", "n", "k", "h", "batch", "attention", "gelu", "relu", "gpu",
        "trials"}},
      {"suite", {"gpu"}},
      {"verify", {"family", "max-candidates", "mutants", "seed", "gpu", "json"}},
      {"info", {"gpu"}},
      {"serve",
       {"socket", "port", "gpu", "backend", "isolation", "jobs", "max-queue",
        "max-in-flight", "deadline", "max-conns", "io-timeout", "idle-timeout",
        "request-timeout", "drain-deadline", "json"}},
  };
  if (!args.stray.empty()) {
    std::fprintf(stderr,
                 "mcfuser %s: unrecognized argument '%s' (flags are spelled "
                 "--name)\n\n",
                 args.command.c_str(), args.stray.front().c_str());
    return false;
  }
  // Only `suite` takes a positional (gemm|attention).
  if (!args.positional.empty()) {
    if (args.command != "suite") {
      std::fprintf(stderr, "mcfuser %s: unexpected argument '%s'\n\n",
                   args.command.c_str(), args.positional.c_str());
      return false;
    }
    if (args.positional != "gemm" && args.positional != "attention") {
      std::fprintf(stderr, "mcfuser suite: unknown suite '%s'\n\n",
                   args.positional.c_str());
      return false;
    }
  }
  const std::set<std::string>* allowed = nullptr;
  const char* mode = "";
  if (args.command == "fuse") {
    // Single-chain, graph, and connect mode accept different flags; a
    // shape flag in graph mode (or --seq/--jobs without --graph) would
    // be dead, so it is rejected rather than ignored.
    if (args.has("connect")) {
      allowed = &kFuseConnect;
      mode = " (connect mode)";
    } else {
      allowed = args.has("graph") ? &kFuseGraph : &kFuseChain;
      mode = args.has("graph") ? " (graph mode)" : "";
    }
  } else if (const auto it = kKnown.find(args.command); it != kKnown.end()) {
    allowed = &it->second;
  } else {
    return true;  // unknown command: usage() later
  }
  for (const auto& kv : args.flags) {
    if (allowed->count(kv.first) == 0) {
      std::fprintf(stderr, "mcfuser %s%s: unknown flag '--%s'\n\n",
                   args.command.c_str(), mode, kv.first.c_str());
      return false;
    }
  }
  // Numeric flags must parse as (in-range) integers; a typo like
  // `--seq abc` gets the usage path, not an uncaught std::stoll throw.
  static const std::set<std::string> kNumeric = {
      "m",       "n",         "k",           "h",
      "batch",   "seq",       "jobs",        "trials",
      "max-queue", "port",    "retries",     "max-conns",
      "max-in-flight", "max-candidates", "mutants", "seed"};
  for (const auto& kv : args.flags) {
    if (kNumeric.count(kv.first) == 0) continue;
    errno = 0;
    char* end = nullptr;
    (void)std::strtoll(kv.second.c_str(), &end, 10);
    if (kv.second.empty() || *end != '\0' || errno == ERANGE) {
      std::fprintf(stderr, "mcfuser %s: '--%s' needs an integer, got '%s'\n\n",
                   args.command.c_str(), kv.first.c_str(), kv.second.c_str());
      return false;
    }
  }
  // ... and decimal flags as finite doubles.
  static const std::set<std::string> kDecimal = {
      "deadline",        "timeout",     "io-timeout",
      "idle-timeout",    "request-timeout", "drain-deadline"};
  for (const auto& kv : args.flags) {
    if (kDecimal.count(kv.first) == 0) continue;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(kv.second.c_str(), &end);
    if (kv.second.empty() || *end != '\0' || errno == ERANGE ||
        !std::isfinite(v)) {
      std::fprintf(stderr, "mcfuser %s: '--%s' needs a number, got '%s'\n\n",
                   args.command.c_str(), kv.first.c_str(), kv.second.c_str());
      return false;
    }
  }
  return true;
}

ChainSpec chain_from(const Args& args) {
  const std::int64_t batch = args.num("batch", 1);
  const std::int64_t m = args.num("m", 512);
  const std::int64_t n = args.num("n", 256);
  const std::int64_t k = args.num("k", 64);
  const std::int64_t h = args.num("h", 64);
  if (args.has("attention")) {
    return ChainSpec::attention("cli", batch, m, n, k, h);
  }
  if (args.has("gelu")) {
    return ChainSpec("cli", batch, m, {k, n, h}, {Epilogue::Gelu, Epilogue::None});
  }
  if (args.has("relu")) {
    return ChainSpec("cli", batch, m, {k, n, h}, {Epilogue::Relu, Epilogue::None});
  }
  return ChainSpec::gemm_chain("cli", batch, m, n, k, h);
}

void print_chain_json(const ChainSpec& chain, const FusionResult& r,
                      const std::string& backend,
                      const jit::CompileStats& jit_delta) {
  std::printf("{\"chain\":\"%s\",\"backend\":\"%s\",\"status\":\"%s\","
              "\"reason\":\"%s\"",
              json_escape(chain.name()).c_str(), json_escape(backend).c_str(),
              fusion_status_name(r.status), json_escape(r.reason).c_str());
  std::printf(",\"jit_compile\":{\"tus_compiled\":%lld,"
              "\"kernels_compiled\":%lld,\"cache_hits\":%lld,"
              "\"failures\":%lld,\"compile_wall_s\":%.6g}",
              static_cast<long long>(jit_delta.tus_compiled),
              static_cast<long long>(jit_delta.kernels_compiled),
              static_cast<long long>(jit_delta.cache_hits()),
              static_cast<long long>(jit_delta.failures),
              jit_delta.compile_wall_s);
  if (r.ok()) {
    std::printf(",\"time_us\":%.6g,\"space_size\":%zu,\"measurements\":%d,"
                "\"generations\":%d,\"best_expr\":%d,\"best_tiles\":[",
                r.time_s() * 1e6, r.space_size, r.tuned.stats.measurements,
                r.tuned.stats.generations, r.tuned.best.expr_id);
    for (std::size_t i = 0; i < r.tuned.best.tiles.size(); ++i) {
      std::printf("%s%lld", i ? "," : "",
                  static_cast<long long>(r.tuned.best.tiles[i]));
    }
    std::printf("]");
  }
  std::printf("}\n");
}

/// --isolation worker|none: "worker" routes every measurement through
/// the crash-isolated sandbox backend ("jit-isolated", overriding
/// --backend); "none" keeps whatever --backend selected.  False + a
/// diagnostic on any other value.
bool apply_isolation(const Args& args, FusionEngineOptions* opts) {
  const std::string iso = args.str("isolation", "none");
  if (iso == "none") return true;
  if (iso == "worker") {
    opts->backend = "jit-isolated";
    return true;
  }
  std::fprintf(stderr, "unknown --isolation '%s' (expected worker|none)\n",
               iso.c_str());
  return false;
}

/// False + a diagnostic listing the registered backends when `name` is
/// not in the registry (shared by the chain and graph fuse modes).
bool backend_known(const std::string& name) {
  const auto names = BackendRegistry::instance().names();
  if (std::find(names.begin(), names.end(), name) != names.end()) return true;
  std::fprintf(stderr, "unknown --backend '%s'; registered:", name.c_str());
  for (const auto& n : names) std::fprintf(stderr, " %s", n.c_str());
  std::fprintf(stderr, "\n");
  return false;
}

int cmd_fuse_graph(const Args& args, const GpuSpec& gpu) {
  const std::string model = args.str("graph", "bert-base");
  const std::int64_t seq = args.num("seq", 0);
  if (args.has("seq") && seq <= 0) {
    std::fprintf(stderr, "--seq must be a positive length, got %lld\n",
                 static_cast<long long>(seq));
    return 2;
  }
  // Range-checked on the full int64 before the int cast below, so huge
  // values are rejected instead of silently wrapping.
  constexpr std::int64_t kMaxJobs = 4096;
  if (args.num("jobs", 0) < 0 || args.num("jobs", 0) > kMaxJobs) {
    std::fprintf(stderr, "--jobs must be in [0, %lld]\n",
                 static_cast<long long>(kMaxJobs));
    return 2;
  }
  NetGraph g("empty");
  if (model == "bert-small" || model == "bert-base" || model == "bert-large") {
    BertConfig cfg = model == "bert-small"   ? bert_small()
                     : model == "bert-large" ? bert_large()
                                             : bert_base();
    if (seq > 0) cfg.seq_len = seq;
    g = build_bert(cfg);
  } else if (model == "mixer-small" || model == "mixer-base") {
    MixerConfig cfg = model == "mixer-small" ? mixer_small() : mixer_base();
    if (seq > 0) cfg.patches = seq;  // --seq = the token/sequence dimension
    g = build_mixer(cfg);
  } else {
    std::fprintf(stderr, "unknown --graph '%s'\n\n", model.c_str());
    return usage();
  }

  // Admission control: --max-queue bounds the engine queue (the batch
  // path waits for slots, so memory is bounded without shedding chains);
  // --deadline sheds chains whose queue wait exceeds S seconds
  // (reported as deadline-exceeded, exit 1).
  constexpr std::int64_t kMaxQueueCap = 1 << 20;
  if (args.num("max-queue", 0) < 0 || args.num("max-queue", 0) > kMaxQueueCap) {
    std::fprintf(stderr, "--max-queue must be in [0, %lld]\n",
                 static_cast<long long>(kMaxQueueCap));
    return 2;
  }
  if (args.dbl("deadline", 0.0) < 0.0) {
    std::fprintf(stderr, "--deadline must be a non-negative number of seconds\n");
    return 2;
  }

  FusionEngineOptions opts;
  opts.backend = args.str("backend", "");
  opts.jobs = static_cast<int>(args.num("jobs", 0));
  opts.queue.max_queued = static_cast<std::size_t>(args.num("max-queue", 0));
  opts.queue.deadline_s = args.dbl("deadline", 0.0);
  if (!apply_isolation(args, &opts)) return 2;
  if (!opts.backend.empty() && !backend_known(opts.backend)) return 2;
  FusionEngine engine(gpu, opts);
  const GraphFusionReport rep = engine.fuse_graph(g);

  if (args.has("json")) {
    std::printf("%s\n", rep.to_json().c_str());
  } else {
    std::printf("graph %s on %s: %d nodes, %d MBCI subgraphs, "
                "%d distinct chain(s), %d tuned (%d measurements, %.2fs "
                "tuning wall)\n",
                rep.graph_name.c_str(), gpu.name.c_str(), rep.graph_nodes,
                rep.mbci_subgraphs, rep.distinct_chains, rep.tuned_chains,
                rep.total_measurements, rep.tuning_wall_s);
    Table table;
    table.set_header({"chain", "digest", "x", "status", "time (us)", "source"});
    for (const GraphChainReport& c : rep.chains) {
      table.add_row({c.chain_name, c.digest, std::to_string(c.occurrences),
                     c.result ? fusion_status_name(c.result->status) : "?",
                     c.result && c.result->ok()
                         ? Table::num(c.result->time_s() * 1e6, 2)
                         : "-",
                     c.reused ? "memo" : "tuned"});
    }
    std::printf("%s", table.to_string().c_str());
  }
  return rep.all_ok() ? 0 : 1;
}

/// Client mode: tune the chain through a running `mcfuser serve` (or
/// fetch its stats).  Exit 0 only when the RPC succeeded AND the remote
/// fusion resolved Ok — a Rejected/Cancelled result is exit 1 like the
/// local path.
int cmd_fuse_connect(const Args& args) {
  net::ClientOptions copt;
  copt.request_timeout_s = args.dbl("timeout", 0.0);
  copt.max_retries = static_cast<int>(args.num("retries", 3));
  if (copt.max_retries < 0 || copt.max_retries > 100) {
    std::fprintf(stderr, "--retries must be in [0, 100]\n");
    return 2;
  }
  net::FusionClient client(args.str("connect", ""), copt);

  if (args.has("stats")) {
    std::string json;
    const net::RpcResult res = client.query_stats(&json);
    if (res.status != net::RpcStatus::Ok) {
      std::fprintf(stderr, "mcfuser fuse --connect: %s: %s (%d attempt(s))\n",
                   net::rpc_status_name(res.status), res.detail.c_str(),
                   res.attempts);
      return 1;
    }
    std::printf("%s\n", json.c_str());
    return 0;
  }

  const ChainSpec chain = chain_from(args);
  const net::RpcResult res = client.fuse(chain);
  if (res.status != net::RpcStatus::Ok) {
    std::fprintf(stderr, "mcfuser fuse --connect: %s: %s (%d attempt(s))\n",
                 net::rpc_status_name(res.status), res.detail.c_str(),
                 res.attempts);
    return 1;
  }
  const auto status = static_cast<FusionStatus>(res.response.status);
  if (args.has("json")) {
    std::printf("%s\n", res.response.json.c_str());
  } else if (status == FusionStatus::Ok) {
    std::printf("remote fuse ok: %s -> %.2f us (%d attempt(s))\n",
                chain.to_string().c_str(), res.response.time_s * 1e6,
                res.attempts);
  } else {
    std::fprintf(stderr, "remote fusion failed: %s: %s\n",
                 fusion_status_name(status), res.response.reason.c_str());
  }
  return status == FusionStatus::Ok ? 0 : 1;
}

int cmd_fuse(const Args& args) {
  if (args.has("connect")) return cmd_fuse_connect(args);
  const GpuSpec gpu = gpu_by_name(args.str("gpu", "a100"));
  if (args.has("graph")) return cmd_fuse_graph(args, gpu);
  const ChainSpec chain = chain_from(args);

  FusionEngineOptions opts;
  opts.backend = args.str("backend", "sim");
  if (!apply_isolation(args, &opts)) return 2;
  if (!backend_known(opts.backend)) return 2;
  const bool json = args.has("json");
  if (json && (args.has("emit") || args.has("pseudo"))) {
    // --json replaces the human-readable output entirely; combining it
    // with a kernel dump would be silently dead, so reject instead.
    std::fprintf(stderr, "--json cannot be combined with --emit/--pseudo\n");
    return 2;
  }
  if (!json) {
    std::printf("fusing %s on %s (backend: %s)\n", chain.to_string().c_str(),
                gpu.name.c_str(), opts.backend.c_str());
  }

  const FusionEngine engine(gpu, opts);
  FusionResult result;
  TuningCache cache;
  const jit::CompileStats jit_before = jit::stats_snapshot();
  const std::string cache_path = args.str("cache", "");
  if (!cache_path.empty()) {
    cache.load(cache_path);
    result = engine.fuse_cached(chain, cache);
    if (!cache.save(cache_path)) {
      std::fprintf(stderr, "warning: could not write %s\n", cache_path.c_str());
    }
  } else {
    result = engine.fuse(chain);
  }
  if (json) {
    print_chain_json(chain, result, opts.backend,
                     jit::stats_snapshot().since(jit_before));
    return result.ok() ? 0 : 1;
  }
  if (!result.ok()) {
    std::fprintf(stderr, "fusion failed: %s: %s\n",
                 fusion_status_name(result.status), result.reason.c_str());
    return 1;
  }
  std::printf("space: %.3g raw -> %zu candidates; tuning: %d measurements\n",
              result.funnel.original, result.space_size,
              result.tuned.stats.measurements);
  std::printf("best measured time (%s): %.2f us (%.1f%% of peak FLOPs)\n",
              opts.backend.c_str(), result.time_s() * 1e6,
              100.0 * chain.total_flops() / result.time_s() / gpu.peak_flops);
  if (args.has("pseudo") || !args.has("emit")) {
    std::printf("\n%s", result.kernel->schedule().to_pseudo().c_str());
  }
  if (args.has("emit")) {
    std::printf("\n%s", emit_kernel_source(result.kernel->schedule(), gpu).c_str());
  }
  return 0;
}

int cmd_compare(const Args& args) {
  const GpuSpec gpu = gpu_by_name(args.str("gpu", "a100"));
  const ChainSpec chain = chain_from(args);
  if (!chain.valid()) {
    // The baselines consume the chain directly (no engine in front), so
    // invalid shapes stop here instead of reaching their arithmetic.
    std::fprintf(stderr, "invalid chain: %s\n",
                 chain.validation_error().c_str());
    return 1;
  }
  std::printf("comparing frameworks on %s (%s)\n\n", chain.to_string().c_str(),
              gpu.name.c_str());
  Table table;
  table.set_header({"framework", "time (us)", "vs PyTorch", "fused"});
  const SubgraphResult pt = UnfusedBaseline(gpu).run(chain);
  auto row = [&](const std::string& name, double t, bool fused) {
    table.add_row({name, Table::num(t * 1e6, 2), Table::num(pt.time_s / t, 2) + "x",
                   fused ? "yes" : "no"});
  };
  row("PyTorch", pt.time_s, false);
  AnsorOptions aopts;
  aopts.trials = static_cast<int>(args.num("trials", 1000));
  const SubgraphResult an = AnsorLikeBaseline(gpu, aopts).run(chain);
  row("Ansor", an.time_s, an.fused);
  const BoltLikeBaseline bolt(gpu);
  if (bolt.supports_gpu()) {
    const SubgraphResult b = bolt.run(chain);
    row("BOLT", b.time_s, b.fused);
  } else {
    table.add_row({"BOLT", "n/a (sm86)", "-", "-"});
  }
  if (chain.num_ops() == 2 && chain.epilogue(0) == Epilogue::OnlineSoftmax) {
    const SubgraphResult f = FlashAttentionLikeBaseline(gpu).run(chain);
    row("FlashAttention", f.time_s, f.fused);
  }
  const SubgraphResult ch = ChimeraLikeBaseline(gpu).run(chain);
  row("MCFuser-Chimera", ch.time_s, ch.fused);
  const FusionResult mc = FusionEngine(gpu).fuse(chain);
  if (mc.ok()) row("MCFuser", mc.time_s(), true);
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_suite(const Args& args) {
  const GpuSpec gpu = gpu_by_name(args.str("gpu", "a100"));
  const bool attention = args.positional == "attention";
  const auto suite = attention ? attention_suite() : gemm_chain_suite();
  Table table(std::string(attention ? "Table III" : "Table II") + " suite on " +
              gpu.name);
  table.set_header({"workload", "shape", "PyTorch (us)", "MCFuser (us)",
                    "speedup"});
  const FusionEngine engine(gpu);
  for (const ChainSpec& chain : suite) {
    const double pt = UnfusedBaseline(gpu).run(chain).time_s;
    const FusionResult mc = engine.fuse(chain);
    if (!mc.ok()) {
      std::fprintf(stderr, "%s: %s: %s\n", chain.name().c_str(),
                   fusion_status_name(mc.status), mc.reason.c_str());
      return 1;
    }
    table.add_row({chain.name(), chain.to_string(), Table::num(pt * 1e6, 1),
                   Table::num(mc.time_s() * 1e6, 1),
                   Table::num(pt / mc.time_s(), 2) + "x"});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

/// Self-pipe for the drain signals: the async-signal-handler writes one
/// byte; the main thread blocks on the read end and then runs the
/// (thread-context-only) server.stop().
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_drain_signal(int) {
  const unsigned char byte = 1;
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

int cmd_serve(const Args& args) {
  if (!args.has("socket") && !args.has("port")) {
    std::fprintf(stderr, "mcfuser serve: need --socket PATH and/or --port N "
                         "(--port 0 picks an ephemeral port)\n");
    return 2;
  }
  if (args.has("port") &&
      (args.num("port", 0) < 0 || args.num("port", 0) > 65535)) {
    std::fprintf(stderr, "--port must be in [0, 65535]\n");
    return 2;
  }
  const GpuSpec gpu = gpu_by_name(args.str("gpu", "a100"));
  FusionEngineOptions opts;
  opts.backend = args.str("backend", "sim");
  if (!apply_isolation(args, &opts)) return 2;
  if (!backend_known(opts.backend)) return 2;
  opts.jobs = static_cast<int>(args.num("jobs", 0));
  opts.queue.max_queued = static_cast<std::size_t>(args.num("max-queue", 0));
  opts.queue.max_in_flight =
      static_cast<std::size_t>(args.num("max-in-flight", 0));
  opts.queue.deadline_s = args.dbl("deadline", 0.0);
  // Reject overflow: a full queue sheds as FusionStatus::Rejected through
  // the server's try_submit path — the service never blocks or OOMs.
  opts.queue.overflow = OverflowPolicy::Reject;
  FusionEngine engine(gpu, opts);

  net::ServerOptions sopt;
  sopt.unix_path = args.str("socket", "");
  sopt.tcp_port = args.has("port") ? static_cast<int>(args.num("port", 0)) : -1;
  sopt.max_connections = static_cast<int>(args.num("max-conns", 64));
  sopt.io_timeout_s = args.dbl("io-timeout", 10.0);
  sopt.idle_timeout_s = args.dbl("idle-timeout", 60.0);
  sopt.request_timeout_s = args.dbl("request-timeout", 300.0);
  sopt.drain_deadline_s = args.dbl("drain-deadline", 10.0);
  net::FusionServer server(engine, sopt);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "mcfuser serve: %s\n", err.c_str());
    return 1;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "mcfuser serve: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa {};
  sa.sa_handler = on_drain_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  if (!sopt.unix_path.empty()) {
    std::fprintf(stderr, "mcfuser serve: listening on unix:%s\n",
                 sopt.unix_path.c_str());
  }
  if (sopt.tcp_port >= 0) {
    std::fprintf(stderr, "mcfuser serve: listening on 127.0.0.1:%d\n",
                 server.port());
  }
  std::fprintf(stderr, "mcfuser serve: backend %s on %s; SIGTERM drains\n",
               opts.backend.c_str(), gpu.name.c_str());

  unsigned char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "mcfuser serve: draining (deadline %.1fs)...\n",
               sopt.drain_deadline_s);
  server.stop();

  // The exit code certifies the accounting identity: every admitted
  // request resolved into exactly one terminal bucket even if the drain
  // interrupted a flood.
  const EngineStats st = engine.stats();
  const net::ServerStats ss = server.stats();
  const bool identity_ok = st.submitted == st.completed + st.rejected +
                                               st.cancelled +
                                               st.deadline_exceeded;
  if (args.has("json")) {
    std::printf(
        "{\"identity_ok\":%s,\"engine\":{\"submitted\":%llu,"
        "\"completed\":%llu,\"rejected\":%llu,\"cancelled\":%llu,"
        "\"deadline_exceeded\":%llu},\"server\":{\"accepted\":%llu,"
        "\"requests\":%llu,\"requests_ok\":%llu,\"requests_shed\":%llu,"
        "\"overload_sheds\":%llu,\"protocol_errors\":%llu,"
        "\"version_mismatches\":%llu,\"oversized_frames\":%llu,"
        "\"idle_closes\":%llu,\"io_timeouts\":%llu}}\n",
        identity_ok ? "true" : "false",
        static_cast<unsigned long long>(st.submitted),
        static_cast<unsigned long long>(st.completed),
        static_cast<unsigned long long>(st.rejected),
        static_cast<unsigned long long>(st.cancelled),
        static_cast<unsigned long long>(st.deadline_exceeded),
        static_cast<unsigned long long>(ss.accepted),
        static_cast<unsigned long long>(ss.requests),
        static_cast<unsigned long long>(ss.requests_ok),
        static_cast<unsigned long long>(ss.requests_shed),
        static_cast<unsigned long long>(ss.overload_sheds),
        static_cast<unsigned long long>(ss.protocol_errors),
        static_cast<unsigned long long>(ss.version_mismatches),
        static_cast<unsigned long long>(ss.oversized_frames),
        static_cast<unsigned long long>(ss.idle_closes),
        static_cast<unsigned long long>(ss.io_timeouts));
  } else {
    std::fprintf(stderr,
                 "mcfuser serve: drained; %llu conns, %llu requests "
                 "(%llu ok, %llu shed); identity %s\n",
                 static_cast<unsigned long long>(ss.accepted),
                 static_cast<unsigned long long>(ss.requests),
                 static_cast<unsigned long long>(ss.requests_ok),
                 static_cast<unsigned long long>(ss.requests_shed),
                 identity_ok ? "ok" : "BROKEN");
  }
  if (!identity_ok) {
    std::fprintf(stderr,
                 "mcfuser serve: accounting identity broken: submitted=%llu "
                 "!= completed=%llu + rejected=%llu + cancelled=%llu + "
                 "deadline_exceeded=%llu\n",
                 static_cast<unsigned long long>(st.submitted),
                 static_cast<unsigned long long>(st.completed),
                 static_cast<unsigned long long>(st.rejected),
                 static_cast<unsigned long long>(st.cancelled),
                 static_cast<unsigned long long>(st.deadline_exceeded));
  }
  return identity_ok ? 0 : 1;
}

/// The verify sweep's workload matrix: the paper's evaluation families
/// plus the end-to-end model chains, mirroring what the conformance tests
/// tune.  Every chain is paired with its pruned tuner candidate grid so
/// the sweep proves safety for the schedules the tuner can actually emit.
std::vector<ChainSpec> verify_family_chains(const std::string& family) {
  std::vector<ChainSpec> chains;
  const bool all = family == "all";
  if (all || family == "gemm") {
    for (auto& c : gemm_chain_suite()) chains.push_back(std::move(c));
  }
  if (all || family == "attention") {
    for (auto& c : attention_suite()) chains.push_back(std::move(c));
  }
  if (all || family == "bert") {
    for (const BertConfig& cfg : {bert_small(), bert_base(), bert_large()}) {
      chains.push_back(bert_attention_chain(cfg, cfg.seq_len));
    }
  }
  if (all || family == "mixer") {
    // Token-mixing MLP as an MBCI chain (graph/mixer.hpp): the
    // transposed patch matmul pair with the GeLU epilogue in between.
    for (const MixerConfig& cfg : {mixer_small(), mixer_base()}) {
      chains.emplace_back(cfg.name + "-token", /*batch=*/1, cfg.channels,
                          std::vector<std::int64_t>{cfg.patches,
                                                    cfg.token_hidden,
                                                    cfg.patches},
                          std::vector<Epilogue>{Epilogue::Gelu});
    }
  }
  return chains;
}

int cmd_verify(const Args& args) {
  const GpuSpec gpu = gpu_by_name(args.str("gpu", "a100"));
  const std::string family = args.str("family", "all");
  if (family != "all" && family != "gemm" && family != "attention" &&
      family != "bert" && family != "mixer") {
    std::fprintf(stderr, "mcfuser verify: unknown family '%s'\n\n",
                 family.c_str());
    return 2;
  }
  const auto max_candidates =
      static_cast<std::size_t>(std::max<std::int64_t>(
          1, args.num("max-candidates", 8)));
  const auto max_mutants = static_cast<std::size_t>(
      std::max<std::int64_t>(0, args.num("mutants", 4)));
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 42));
  const bool json = args.has("json");

  const std::vector<ChainSpec> chains = verify_family_chains(family);
  PruneOptions prune;
  prune.smem_limit_bytes = gpu.smem_per_block;

  std::size_t candidates_checked = 0;
  std::size_t violations = 0;
  std::size_t mutants_total = 0;
  std::size_t mutants_flagged = 0;
  std::string chains_json;
  for (const ChainSpec& chain : chains) {
    const SearchSpace space(chain, SpaceOptions{}, prune);
    const auto& cands = space.candidates();
    // Even spread over the candidate grid: first, last, and evenly spaced
    // interior points — corner-heavy tilings (the fringe paths) live at
    // the ends of the grid.
    const std::size_t take = std::min(max_candidates, cands.size());
    std::size_t chain_checked = 0;
    std::size_t chain_violations = 0;
    std::size_t chain_mut_total = 0;
    std::size_t chain_mut_flagged = 0;
    std::string reports_json;
    for (std::size_t i = 0; i < take; ++i) {
      const std::size_t idx =
          take <= 1 ? 0 : i * (cands.size() - 1) / (take - 1);
      const Schedule s = space.schedule_for(cands[idx]);
      const verify::VerifyReport report = verify::verify_schedule(s);
      ++chain_checked;
      if (!report.safe()) {
        ++chain_violations;
        if (!reports_json.empty()) reports_json += ",";
        reports_json += report.to_json();
      }
      for (const verify::Mutant& m :
           verify::mutation_corpus(s, seed, max_mutants)) {
        ++chain_mut_total;
        const verify::VerifyReport mr = verify::verify_schedule(m.schedule);
        if (!mr.safe()) {
          ++chain_mut_flagged;
        } else {
          std::fprintf(stderr,
                       "mcfuser verify: MISSED mutant '%s' (%s) on %s\n",
                       m.name.c_str(), m.detail.c_str(),
                       chain.name().c_str());
        }
      }
    }
    candidates_checked += chain_checked;
    violations += chain_violations;
    mutants_total += chain_mut_total;
    mutants_flagged += chain_mut_flagged;
    if (json) {
      if (!chains_json.empty()) chains_json += ",";
      chains_json += "{\"name\":\"" + chain.name() +
                     "\",\"shape\":\"" + chain.to_string() +
                     "\",\"grid\":" + std::to_string(cands.size()) +
                     ",\"checked\":" + std::to_string(chain_checked) +
                     ",\"violations\":" + std::to_string(chain_violations) +
                     ",\"mutants\":" + std::to_string(chain_mut_total) +
                     ",\"mutants_flagged\":" +
                     std::to_string(chain_mut_flagged) +
                     ",\"reports\":[" + reports_json + "]}";
    } else {
      std::printf("%-14s %-28s grid %-8zu checked %-3zu violations %-2zu "
                  "mutants %zu/%zu flagged\n",
                  chain.name().c_str(), chain.to_string().c_str(),
                  cands.size(), chain_checked, chain_violations,
                  chain_mut_flagged, chain_mut_total);
    }
  }

  const bool clean = violations == 0 && mutants_flagged == mutants_total;
  if (json) {
    std::printf("{\"gpu\":\"%s\",\"family\":\"%s\",\"chains\":[%s],"
                "\"candidates_checked\":%zu,\"violations\":%zu,"
                "\"mutants\":%zu,\"mutants_flagged\":%zu,\"clean\":%s}\n",
                gpu.name.c_str(), family.c_str(), chains_json.c_str(),
                candidates_checked, violations, mutants_total,
                mutants_flagged, clean ? "true" : "false");
  } else {
    std::printf("verify: %zu candidates across %zu chains, %zu violations; "
                "%zu/%zu mutants flagged -> %s\n",
                candidates_checked, chains.size(), violations,
                mutants_flagged, mutants_total, clean ? "CLEAN" : "UNSAFE");
  }
  return clean ? 0 : 1;
}

int cmd_info(const Args& args) {
  const GpuSpec gpu = gpu_by_name(args.str("gpu", "a100"));
  std::printf("%s: %d SMs, %.0f TFLOPS fp16 TC, %.0f GB/s DRAM, "
              "%lld KiB smem/block, %lld MiB L2 @ %.1f TB/s\n",
              gpu.name.c_str(), gpu.num_sms, gpu.peak_flops / 1e12,
              gpu.mem_bandwidth / 1e9,
              static_cast<long long>(gpu.smem_per_block / 1024),
              static_cast<long long>(gpu.l2_bytes / (1024 * 1024)),
              gpu.l2_bandwidth / 1e12);
  std::printf("P/W = %.1f FLOP/byte (MBCI threshold)\n", gpu.flops_per_byte());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (!validate_flags(args)) return usage();
  if (args.command == "fuse") return cmd_fuse(args);
  if (args.command == "compare") return cmd_compare(args);
  if (args.command == "suite") return cmd_suite(args);
  if (args.command == "verify") return cmd_verify(args);
  if (args.command == "info") return cmd_info(args);
  if (args.command == "serve") return cmd_serve(args);
  return usage();
}
