// mcfuser — command-line driver for the fusion pass.
//
//   mcfuser fuse    --m 512 --n 256 --k 64 --h 64 [--batch N]
//                   [--attention | --gelu | --relu] [--gpu a100|rtx3080]
//                   [--backend=sim|interp|cached-sim]
//                   [--cache FILE] [--emit] [--pseudo]
//   mcfuser compare <same shape flags>     run every baseline on the chain
//   mcfuser suite   gemm | attention       paper Table II / III sweep
//   mcfuser info    [--gpu NAME]           GPU model parameters
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "baselines/ansor_like.hpp"
#include "baselines/bolt_like.hpp"
#include "baselines/chimera_like.hpp"
#include "baselines/flash_like.hpp"
#include "baselines/unfused.hpp"
#include "exec/codegen.hpp"
#include "measure/backend.hpp"
#include "search/mcfuser.hpp"
#include "support/table.hpp"
#include "workloads/suites.hpp"

namespace {

using namespace mcf;

struct Args {
  std::string command;
  std::string positional;
  std::map<std::string, std::string> flags;

  [[nodiscard]] std::int64_t num(const std::string& key, std::int64_t dflt) const {
    const auto it = flags.find(key);
    return it == flags.end() ? dflt : std::stoll(it->second);
  }
  [[nodiscard]] std::string str(const std::string& key, std::string dflt) const {
    const auto it = flags.find(key);
    return it == flags.end() ? std::move(dflt) : it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return flags.count(key) != 0;
  }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) == 0) {
      // Both --key value and --key=value spellings are accepted.
      const std::string body = tok.substr(2);
      if (const auto eq = body.find('='); eq != std::string::npos) {
        args.flags[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.flags[body] = argv[++i];
      } else {
        args.flags[body] = "1";
      }
    } else if (args.positional.empty()) {
      args.positional = tok;
    }
  }
  return args;
}

ChainSpec chain_from(const Args& args) {
  const std::int64_t batch = args.num("batch", 1);
  const std::int64_t m = args.num("m", 512);
  const std::int64_t n = args.num("n", 256);
  const std::int64_t k = args.num("k", 64);
  const std::int64_t h = args.num("h", 64);
  if (args.has("attention")) {
    return ChainSpec::attention("cli", batch, m, n, k, h);
  }
  if (args.has("gelu")) {
    return ChainSpec("cli", batch, m, {k, n, h}, {Epilogue::Gelu, Epilogue::None});
  }
  if (args.has("relu")) {
    return ChainSpec("cli", batch, m, {k, n, h}, {Epilogue::Relu, Epilogue::None});
  }
  return ChainSpec::gemm_chain("cli", batch, m, n, k, h);
}

int cmd_fuse(const Args& args) {
  const GpuSpec gpu = gpu_by_name(args.str("gpu", "a100"));
  const ChainSpec chain = chain_from(args);

  MCFuserOptions opts;
  opts.backend = args.str("backend", "sim");
  if (BackendRegistry::instance().create(opts.backend, gpu) == nullptr) {
    std::fprintf(stderr, "unknown --backend '%s'; registered:",
                 opts.backend.c_str());
    for (const auto& name : BackendRegistry::instance().names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  std::printf("fusing %s on %s (backend: %s)\n", chain.to_string().c_str(),
              gpu.name.c_str(), opts.backend.c_str());

  const MCFuser fuser(gpu, opts);
  FusionResult result;
  TuningCache cache;
  const std::string cache_path = args.str("cache", "");
  if (!cache_path.empty()) {
    cache.load(cache_path);
    result = fuser.fuse_cached(chain, cache);
    if (!cache.save(cache_path)) {
      std::fprintf(stderr, "warning: could not write %s\n", cache_path.c_str());
    }
  } else {
    result = fuser.fuse(chain);
  }
  if (!result.ok) {
    std::fprintf(stderr, "fusion failed\n");
    return 1;
  }
  std::printf("space: %.3g raw -> %zu candidates; tuning: %d measurements\n",
              result.funnel.original, result.space_size,
              result.tuned.stats.measurements);
  std::printf("best measured time (%s): %.2f us (%.1f%% of peak FLOPs)\n",
              opts.backend.c_str(), result.time_s() * 1e6,
              100.0 * chain.total_flops() / result.time_s() / gpu.peak_flops);
  if (args.has("pseudo") || !args.has("emit")) {
    std::printf("\n%s", result.kernel->schedule().to_pseudo().c_str());
  }
  if (args.has("emit")) {
    std::printf("\n%s", emit_kernel_source(result.kernel->schedule(), gpu).c_str());
  }
  return 0;
}

int cmd_compare(const Args& args) {
  const GpuSpec gpu = gpu_by_name(args.str("gpu", "a100"));
  const ChainSpec chain = chain_from(args);
  std::printf("comparing frameworks on %s (%s)\n\n", chain.to_string().c_str(),
              gpu.name.c_str());
  Table table;
  table.set_header({"framework", "time (us)", "vs PyTorch", "fused"});
  const SubgraphResult pt = UnfusedBaseline(gpu).run(chain);
  auto row = [&](const std::string& name, double t, bool fused) {
    table.add_row({name, Table::num(t * 1e6, 2), Table::num(pt.time_s / t, 2) + "x",
                   fused ? "yes" : "no"});
  };
  row("PyTorch", pt.time_s, false);
  AnsorOptions aopts;
  aopts.trials = static_cast<int>(args.num("trials", 1000));
  const SubgraphResult an = AnsorLikeBaseline(gpu, aopts).run(chain);
  row("Ansor", an.time_s, an.fused);
  const BoltLikeBaseline bolt(gpu);
  if (bolt.supports_gpu()) {
    const SubgraphResult b = bolt.run(chain);
    row("BOLT", b.time_s, b.fused);
  } else {
    table.add_row({"BOLT", "n/a (sm86)", "-", "-"});
  }
  if (chain.num_ops() == 2 && chain.epilogue(0) == Epilogue::OnlineSoftmax) {
    const SubgraphResult f = FlashAttentionLikeBaseline(gpu).run(chain);
    row("FlashAttention", f.time_s, f.fused);
  }
  const SubgraphResult ch = ChimeraLikeBaseline(gpu).run(chain);
  row("MCFuser-Chimera", ch.time_s, ch.fused);
  const FusionResult mc = MCFuser(gpu).fuse(chain);
  if (mc.ok) row("MCFuser", mc.time_s(), true);
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_suite(const Args& args) {
  const GpuSpec gpu = gpu_by_name(args.str("gpu", "a100"));
  const bool attention = args.positional == "attention";
  const auto suite = attention ? attention_suite() : gemm_chain_suite();
  Table table(std::string(attention ? "Table III" : "Table II") + " suite on " +
              gpu.name);
  table.set_header({"workload", "shape", "PyTorch (us)", "MCFuser (us)",
                    "speedup"});
  for (const ChainSpec& chain : suite) {
    const double pt = UnfusedBaseline(gpu).run(chain).time_s;
    const FusionResult mc = MCFuser(gpu).fuse(chain);
    if (!mc.ok) return 1;
    table.add_row({chain.name(), chain.to_string(), Table::num(pt * 1e6, 1),
                   Table::num(mc.time_s() * 1e6, 1),
                   Table::num(pt / mc.time_s(), 2) + "x"});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_info(const Args& args) {
  const GpuSpec gpu = gpu_by_name(args.str("gpu", "a100"));
  std::printf("%s: %d SMs, %.0f TFLOPS fp16 TC, %.0f GB/s DRAM, "
              "%lld KiB smem/block, %lld MiB L2 @ %.1f TB/s\n",
              gpu.name.c_str(), gpu.num_sms, gpu.peak_flops / 1e12,
              gpu.mem_bandwidth / 1e9,
              static_cast<long long>(gpu.smem_per_block / 1024),
              static_cast<long long>(gpu.l2_bytes / (1024 * 1024)),
              gpu.l2_bandwidth / 1e12);
  std::printf("P/W = %.1f FLOP/byte (MBCI threshold)\n", gpu.flops_per_byte());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: mcfuser <fuse|compare|suite|info> [flags]\n"
               "  fuse    --m M --n N --k K --h H [--batch B] "
               "[--attention|--gelu|--relu] [--gpu NAME] "
               "[--backend=sim|interp|cached-sim] [--cache FILE] [--emit]\n"
               "  compare <same shape flags> [--trials T]\n"
               "  suite   gemm|attention [--gpu NAME]\n"
               "  info    [--gpu NAME]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.command == "fuse") return cmd_fuse(args);
  if (args.command == "compare") return cmd_compare(args);
  if (args.command == "suite") return cmd_suite(args);
  if (args.command == "info") return cmd_info(args);
  return usage();
}
