#!/usr/bin/env bash
# Banned-pattern lint: greps src/ for primitives the codebase has
# sanctioned wrappers for, so new code cannot quietly bypass them.
#
#   raw-mutex   std::mutex / std::recursive_mutex outside support/mutex —
#               bare mutexes skip the capability annotations and the
#               lock-order validator (docs/concurrency.md)
#   raw-getenv  getenv() outside support/env — env::* is the single
#               choke point for knob parsing and the knob inventory
#               (docs/service.md "Environment knobs")
#   raw-popen   popen() outside exec/jit — pipes without a deadline;
#               the jit's fork/exec pipeline is the sanctioned way to
#               run a subprocess with a timeout
#
# Exceptions live in tools/lint_allowlist.txt ("<rule> <path>"), one
# grant per file with a stated reason.  Run directly or via ctest
# (lint_banned_patterns); CI runs it inside tools/run_lint.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWLIST=tools/lint_allowlist.txt

allowed() {  # allowed <rule> <file>
  grep -vE '^[[:space:]]*(#|$)' "$ALLOWLIST" 2>/dev/null |
    grep -qxF "$1 $2"
}

fail=0
check() {  # check <rule> <extended-regex>
  local rule="$1" pattern="$2" hit file
  while IFS= read -r hit; do
    [[ -z "$hit" ]] && continue
    file="${hit%%:*}"
    if allowed "$rule" "$file"; then continue; fi
    echo "banned-pattern[$rule]: $hit" >&2
    fail=1
  done < <(grep -rnE --include='*.cpp' --include='*.hpp' "$pattern" src || true)
}

check raw-mutex  'std::(recursive_)?mutex'
check raw-getenv '(std::)?getenv[[:space:]]*\('
check raw-popen  '(^|[^_[:alnum:]])popen[[:space:]]*\('

if [[ $fail -ne 0 ]]; then
  echo "check_banned_patterns.sh: FAILED — use the sanctioned wrapper or add" >&2
  echo "an allowlist grant (with a reason) to $ALLOWLIST" >&2
  exit 1
fi
echo "check_banned_patterns.sh: clean"
