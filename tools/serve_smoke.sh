#!/usr/bin/env bash
# Serve-mode smoke: start `mcfuser serve` on a Unix socket, hammer it
# with concurrent client fuse requests, SIGTERM it mid-flood, and assert
# (a) the drain exits 0 and (b) the EngineStats accounting identity
# (submitted == completed + rejected + cancelled + deadline_exceeded)
# survived — the server's --json exit report carries the verdict.
#
# Usage: serve_smoke.sh /path/to/mcfuser
# Runs under ctest (tools_serve_smoke) in the Release and sanitizer CI
# lanes; everything is sim-backend, no toolchain needed.
set -u

BIN="${1:?usage: serve_smoke.sh /path/to/mcfuser}"
SOCK="$(mktemp -u /tmp/mcf-smoke-XXXXXX).sock"
OUT="$(mktemp /tmp/mcf-smoke-XXXXXX.json)"

cleanup() {
  [ -n "${SERVER:-}" ] && kill -9 "$SERVER" 2>/dev/null
  rm -f "$SOCK" "$OUT"
}
trap cleanup EXIT

"$BIN" serve --socket "$SOCK" --backend sim --json >"$OUT" 2>/dev/null &
SERVER=$!

# Wait for the listener (the socket file appears once bound).
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  kill -0 "$SERVER" 2>/dev/null || { echo "FAIL: server died before binding"; exit 1; }
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "FAIL: server never bound $SOCK"; exit 1; }

# Concurrent flood: client failures are expected once the drain begins
# (that is the point); only the server's own verdict matters.
CLIENT_PIDS=""
for c in 1 2 3 4; do
  (
    for r in 1 2 3; do
      "$BIN" fuse --connect "$SOCK" --m 128 --n 96 --k 64 --h 64 \
        >/dev/null 2>&1 || true
    done
  ) &
  CLIENT_PIDS="$CLIENT_PIDS $!"
done

# SIGTERM lands mid-flood; the server must stop accepting, resolve
# in-flight work, and exit by itself.
sleep 0.7
kill -TERM "$SERVER"
wait "$SERVER"
CODE=$?
SERVER=""
for pid in $CLIENT_PIDS; do wait "$pid" 2>/dev/null; done

if [ "$CODE" -ne 0 ]; then
  echo "FAIL: serve drain exited $CODE"
  cat "$OUT"
  exit 1
fi
if ! grep -q '"identity_ok":true' "$OUT"; then
  echo "FAIL: accounting identity broken after drain"
  cat "$OUT"
  exit 1
fi
if [ -S "$SOCK" ]; then
  echo "FAIL: socket file not removed on drain"
  exit 1
fi
echo "serve smoke ok: $(cat "$OUT")"
