// Search-space exploration tour (paper §III/§IV): enumerate the tiling
// expressions of a chain, watch the pruning funnel, inspect a few
// scheduled candidates, and see how the analytical model ranks against
// simulated measurements.
//
//   build/examples/explore_schedules
#include <cstdio>

#include "gpu/timing.hpp"
#include "model/analytical.hpp"
#include "search/space.hpp"
#include "support/stats.hpp"

int main() {
  using namespace mcf;
  const GpuSpec gpu = a100();
  const ChainSpec chain = ChainSpec::gemm_chain("explore", 1, 512, 512, 128, 128);

  // Raw expression universe.
  const RawExpressions raw = enumerate_expressions(chain);
  std::printf("raw tiling expressions: %zu deep + %zu flat, e.g.\n",
              raw.deep.size(), raw.flat.size());
  std::printf("  deep: %s\n", raw.deep.front().to_string(chain).c_str());
  std::printf("  flat: %s\n\n", raw.flat.front().to_string(chain).c_str());

  // Pruned space.
  PruneOptions prune;
  prune.smem_limit_bytes = gpu.smem_per_block;
  const SearchSpace space(chain, SpaceOptions{}, prune);
  const PruneFunnel& f = space.funnel();
  std::printf("pruning funnel: %.3g -> %.3g -> %.3g -> %.3g -> %.0f\n\n",
              f.original, f.after_rule1, f.after_rule2, f.after_rule3,
              f.after_rule4);

  // Inspect one candidate per expression class.
  const AnalyticalModel model(gpu);
  const TimingSimulator sim(gpu);
  std::printf("%-14s %-22s %-12s %-12s\n", "expression", "tiles (m,k,n,h)",
              "est (us)", "measured (us)");
  std::vector<double> est;
  std::vector<double> meas;
  for (int e = 0; e < static_cast<int>(space.expressions().size()); ++e) {
    for (const auto& cand : space.candidates()) {
      if (cand.expr_id != e) continue;
      const Schedule s = space.schedule_for(cand);
      const auto m = sim.measure(s);
      if (!m.ok) continue;
      const double est_t = model.estimate(s).time_s;
      est.push_back(est_t);
      meas.push_back(m.time_s);
      std::printf("%-14s (%ld,%ld,%ld,%ld)%9s %-12.2f %-12.2f\n",
                  space.expressions()[static_cast<std::size_t>(e)].to_string(chain).c_str(),
                  static_cast<long>(cand.tiles[0]), static_cast<long>(cand.tiles[1]),
                  static_cast<long>(cand.tiles[2]), static_cast<long>(cand.tiles[3]),
                  "", est_t * 1e6, m.time_s * 1e6);
      break;  // one per class for the tour
    }
  }

  // Model quality over a broader sample (the Fig. 11 property).
  est.clear();
  meas.clear();
  const auto& cands = space.candidates();
  for (std::size_t i = 0; i < cands.size();
       i += std::max<std::size_t>(1, cands.size() / 150)) {
    const Schedule s = space.schedule_for(cands[i]);
    const auto m = sim.measure(s);
    if (!m.ok) continue;
    est.push_back(model.estimate(s).time_s);
    meas.push_back(m.time_s);
  }
  std::printf("\nanalytical model vs simulator over %zu candidates: "
              "pearson %.2f, spearman %.2f\n",
              est.size(), pearson(est, meas), spearman(est, meas));
  return pearson(est, meas) > 0.5 ? 0 : 1;
}
