// FusionEngine as a service: asynchronous submission with FusionTicket
// (wait / ready / progress / cancellation), graph-level batch fusion with
// digest dedup, the structured FusionStatus taxonomy, and admission
// control (bounded queue + load shedding + EngineStats).
//
//   build/examples/fusion_service
#include <cstdio>

#include "engine/engine.hpp"
#include "graph/bert.hpp"

int main() {
  using namespace mcf;
  const GpuSpec gpu = a100();

  // One long-lived engine per deployment: it owns the GPU spec, the
  // resolved measurement backend, the worker pool, and the result memo.
  // Production engines bound their queue and memo so a traffic burst
  // sheds load (FusionStatus::Rejected) instead of growing without
  // bound — see docs/api.md "Admission control".
  FusionEngineOptions opts;
  opts.jobs = 4;
  opts.queue.max_queued = 64;
  opts.queue.overflow = OverflowPolicy::Reject;
  opts.memo.max_entries = 1024;
  FusionEngine engine(gpu, opts);

  // --- 1. Async submission: tickets are future-like handles. ---------------
  std::printf("submitting 3 chains asynchronously (jobs=%d)\n", opts.jobs);
  std::vector<FusionTicket> tickets;
  tickets.push_back(engine.submit(ChainSpec::gemm_chain("g_small", 1, 128, 96, 64, 80)));
  tickets.push_back(engine.submit(ChainSpec::attention("attn", 4, 128, 128, 64, 64)));
  tickets.push_back(engine.submit(ChainSpec::gemm_chain("g_wide", 1, 256, 128, 32, 32)));
  for (const FusionTicket& t : tickets) {
    const FusionResult& r = t.get();  // blocks
    const FusionTicket::Progress p = t.progress();
    std::printf("  %-8s -> %-8s %8.2f us  (%d generations, %d measurements)\n",
                t.chain().name().c_str(), fusion_status_name(r.status),
                r.ok() ? r.time_s() * 1e6 : 0.0, p.generations, p.measurements);
  }

  // --- 2. Structured errors: every failure names its layer. ----------------
  const ChainSpec bad("bad", /*batch=*/0, /*m=*/128, {64, 64});
  const FusionResult rbad = engine.fuse(bad);
  std::printf("\ninvalid chain -> %s: %s\n", fusion_status_name(rbad.status),
              rbad.reason.c_str());

  // --- 3. Graph-level batch fusion: dedup + concurrent tuning. -------------
  const NetGraph graph = build_bert(bert_base());
  const GraphFusionReport rep = engine.fuse_graph(graph);
  std::printf("\n%s: %d MBCI subgraphs -> %d distinct chain(s), "
              "%d tuned fresh, %d measurements\n",
              rep.graph_name.c_str(), rep.mbci_subgraphs, rep.distinct_chains,
              rep.tuned_chains, rep.total_measurements);
  for (const GraphChainReport& c : rep.chains) {
    std::printf("  [%s] x%d %s%s\n", c.digest.c_str(), c.occurrences,
                c.result ? fusion_status_name(c.result->status) : "?",
                c.reused ? " (memo)" : "");
  }

  // A second pass over the same graph tunes nothing: the engine memo
  // already holds every digest.
  const GraphFusionReport again = engine.fuse_graph(graph);
  std::printf("second fuse_graph: tuned %d chains (memo hits: %zu)\n",
              again.tuned_chains, engine.result_cache_size());

  std::printf("\nJSON report:\n%s\n", again.to_json().c_str());

  // --- 3b. Observability: the engine health snapshot. ----------------------
  const EngineStats stats = engine.stats();
  std::printf("\nengine stats: submitted=%llu completed=%llu rejected=%llu "
              "cancelled=%llu memo=%zu entries / %zu bytes (%llu evicted)\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.cancelled),
              stats.memo_entries, stats.memo_bytes,
              static_cast<unsigned long long>(stats.memo_evictions));

  // --- 4. Deploy-side execution: the fused kernel runs natively. -----------
  // FusionResult::kernel executes through the jit subsystem when a host
  // toolchain exists (machine code, digest-cached) and falls back to the
  // functional interpreter otherwise — same numerics either way.
  const FusionResult& deploy = tickets.front().get();
  if (deploy.ok()) {
    const ChainSpec& chain = tickets.front().chain();
    Tensor a(Shape{chain.batch(), chain.m(), chain.inner().front()});
    Tensor out(Shape{chain.batch(), chain.m(), chain.inner().back()});
    a.fill_random(7);
    std::vector<Tensor> w;
    for (int op = 0; op < chain.num_ops(); ++op) {
      Tensor t(Shape{chain.batch(), chain.inner()[static_cast<std::size_t>(op)],
                     chain.inner()[static_cast<std::size_t>(op) + 1]});
      t.fill_random(8 + static_cast<std::uint64_t>(op));
      w.push_back(std::move(t));
    }
    const bool native = deploy.kernel->run_native(a, w, out);
    if (!native) (void)deploy.kernel->run(a, w, out);
    std::printf("\nexecuted %s via %s: out[0,0,0] = %.4f\n",
                chain.name().c_str(), native ? "jit native code" : "interpreter",
                out.at(0, 0, 0));
  }
  return rep.all_ok() && again.tuned_chains == 0 ? 0 : 1;
}
