// Quickstart: fuse a memory-bound GEMM chain with MCFuser, inspect the
// winning schedule, compare against unfused execution, and validate the
// fused kernel numerically.
//
//   build/examples/quickstart
#include <cstdio>

#include "baselines/unfused.hpp"
#include "exec/codegen.hpp"
#include "engine/engine.hpp"
#include "tensor/ops.hpp"

int main() {
  using namespace mcf;

  // 1. Describe the operator chain: E = (A x B) x D with a small reduction
  //    dimension (K = 64) — a memory-bound compute-intensive (MBCI) chain.
  const ChainSpec chain = ChainSpec::gemm_chain("quickstart",
                                                /*batch=*/1, /*m=*/512,
                                                /*n=*/256, /*k=*/64, /*h=*/64);
  std::printf("chain: %s\n\n", chain.to_string().c_str());

  // 2. Fuse it for an A100 through a FusionEngine (the long-lived
  //    service object; see examples/fusion_service.cpp for the async and
  //    whole-graph entry points).
  const GpuSpec gpu = a100();
  const FusionEngine engine(gpu);
  const FusionResult result = engine.fuse(chain);
  if (!result.ok()) {
    std::fprintf(stderr, "fusion failed: %s (%s)\n",
                 fusion_status_name(result.status), result.reason.c_str());
    return 1;
  }
  std::printf("search space: %.0f raw candidates -> %zu after pruning\n",
              result.funnel.original, result.space_size);
  std::printf("tuning: %d generations, %d estimates, %d measurements\n\n",
              result.tuned.stats.generations, result.tuned.stats.estimates,
              result.tuned.stats.measurements);
  std::printf("winning schedule:\n%s\n",
              result.kernel->schedule().to_pseudo().c_str());
  std::printf("generated kernel:\n%s\n",
              emit_kernel_source(result.kernel->schedule(), gpu).c_str());

  // 3. Compare with eager (PyTorch-like) execution.
  const SubgraphResult eager = UnfusedBaseline(gpu).run(chain);
  std::printf("simulated time: fused %.2f us vs unfused %.2f us (%.2fx)\n\n",
              result.time_s() * 1e6, eager.time_s * 1e6,
              eager.time_s / result.time_s());

  // 4. Run the fused kernel numerically and check it against the
  //    reference chain.
  Tensor a(Shape{1, 512, 64});
  Tensor b(Shape{1, 64, 256});
  Tensor d(Shape{1, 256, 64});
  a.fill_random(1);
  b.fill_random(2);
  d.fill_random(3);
  std::vector<Tensor> weights;
  weights.push_back(std::move(b));
  weights.push_back(std::move(d));
  Tensor out(Shape{1, 512, 64});
  result.kernel->run(a, weights, out);
  Tensor ref(Shape{1, 512, 64});
  ops::gemm_chain_reference(a, weights[0], weights[1], ref);
  std::printf("max |fused - reference| = %.3g\n", max_abs_diff(out, ref));
  return allclose(out, ref, 1e-3, 1e-4) ? 0 : 1;
}
