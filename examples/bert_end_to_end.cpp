// End-to-end pipeline (paper §V-B / §VI-C): build a BERT encoder graph,
// partition out the MBCI sub-graphs, route them through MCFuser, and
// execute the rest with Relay-like / Ansor-like operator backends.
//
//   build/examples/bert_end_to_end
#include <cstdio>

#include "graph/bert.hpp"
#include "graph/executor.hpp"

int main() {
  using namespace mcf;
  const GpuSpec gpu = a100();
  const BertConfig cfg = bert_base();
  const NetGraph graph = build_bert(cfg);
  std::printf("%s: %d layers, %d graph nodes, %.1f GFLOP\n", cfg.name.c_str(),
              cfg.layers, graph.size(), graph.total_flops() / 1e9);

  // What the partitioner finds.
  const PartitionResult part = partition_mbci(graph, gpu);
  std::printf("MBCI regions: %zu (one per layer), e.g. %s\n",
              part.mbci.size(), part.mbci.front().chain.to_string().c_str());
  std::printf("phi = %.1f op/elem vs P/W = %.1f -> memory bound\n\n",
              chain_flops_per_byte(part.mbci.front().chain),
              gpu.flops_per_byte());

  auto run = [&](GraphBackend backend, bool fuse) {
    GraphExecOptions opts;
    opts.backend = backend;
    opts.use_mcfuser = fuse;
    GraphExecutor ex(gpu, opts);
    return ex.run(graph);
  };
  const GraphRunResult eager = run(GraphBackend::Eager, false);
  const GraphRunResult relay = run(GraphBackend::Relay, false);
  const GraphRunResult mcf_relay = run(GraphBackend::Relay, true);
  const GraphRunResult ansor = run(GraphBackend::Ansor, false);
  const GraphRunResult mcf_ansor = run(GraphBackend::Ansor, true);

  std::printf("simulated end-to-end time (%s):\n", gpu.name.c_str());
  std::printf("  PyTorch eager   : %7.2f ms (%4d kernels)\n",
              eager.time_s * 1e3, eager.kernel_launches);
  std::printf("  Relay           : %7.2f ms (%4d kernels)\n",
              relay.time_s * 1e3, relay.kernel_launches);
  std::printf("  MCFuser+Relay   : %7.2f ms (%4d kernels, %.2fx vs Relay)\n",
              mcf_relay.time_s * 1e3, mcf_relay.kernel_launches,
              relay.time_s / mcf_relay.time_s);
  std::printf("  Ansor           : %7.2f ms (%4d kernels)\n",
              ansor.time_s * 1e3, ansor.kernel_launches);
  std::printf("  MCFuser+Ansor   : %7.2f ms (%4d kernels, %.2fx vs Ansor)\n",
              mcf_ansor.time_s * 1e3, mcf_ansor.kernel_launches,
              ansor.time_s / mcf_ansor.time_s);
  std::printf("\nattention share under eager execution: %.1f%% of time for "
              "%.1f%% of FLOPs\n",
              100.0 * eager.attention_time_s / eager.time_s,
              100.0 * eager.attention_flops / eager.flops);
  std::printf("MCFuser tuned %d unique attention shape(s) with %d simulated "
              "measurements\n",
              mcf_ansor.mcfuser_subgraphs, mcf_ansor.mcfuser_measurements);
  return mcf_relay.time_s < relay.time_s ? 0 : 1;
}
