// Fusing a BERT-Base self-attention module (paper Table III, S2):
// MCFuser rediscovers the FlashAttention structure — streaming the n loop
// with online-softmax rescaling — and beats both the eager module and the
// handcrafted FlashAttention-1 kernel.
//
//   build/examples/attention_fusion
#include <cstdio>

#include "baselines/flash_like.hpp"
#include "baselines/unfused.hpp"
#include "engine/engine.hpp"
#include "tensor/ops.hpp"

int main() {
  using namespace mcf;
  const GpuSpec gpu = a100();

  // BERT-Base attention at sequence length 512: 12 heads, head dim 64.
  const ChainSpec attn = ChainSpec::attention("bert_base_attn",
                                              /*heads=*/12, /*m=*/512,
                                              /*n=*/512, /*k=*/64, /*h=*/64);
  std::printf("module: %s\n", attn.to_string().c_str());

  const FusionEngine engine(gpu);
  const FusionResult fused = engine.fuse(attn);
  if (!fused.ok()) {
    std::fprintf(stderr, "fusion failed: %s\n", fused.reason.c_str());
    return 1;
  }
  const SubgraphResult eager = UnfusedBaseline(gpu).run(attn);
  const SubgraphResult flash = FlashAttentionLikeBaseline(gpu).run(attn);

  std::printf("\nsimulated execution on %s:\n", gpu.name.c_str());
  std::printf("  PyTorch (3 kernels)       : %8.2f us\n", eager.time_s * 1e6);
  std::printf("  FlashAttention-like       : %8.2f us (%.2fx)\n",
              flash.time_s * 1e6, eager.time_s / flash.time_s);
  std::printf("  MCFuser fused kernel      : %8.2f us (%.2fx)\n",
              fused.time_s() * 1e6, eager.time_s / fused.time_s());

  std::printf("\nMCFuser schedule (note the streamed n loop — the online\n"
              "softmax statistics make this the FlashAttention recurrence):\n%s\n",
              fused.kernel->schedule().to_pseudo().c_str());

  // Validate the fused kernel against exact-softmax attention.
  Tensor q(Shape{12, 512, 64});
  Tensor kt(Shape{12, 64, 512});
  Tensor v(Shape{12, 512, 64});
  q.fill_random(7);
  kt.fill_random(8);
  v.fill_random(9);
  std::vector<Tensor> w;
  w.push_back(std::move(kt));
  w.push_back(std::move(v));
  Tensor out(Shape{12, 512, 64});
  fused.kernel->run(q, w, out);
  Tensor ref(Shape{12, 512, 64});
  ops::attention_reference(q, w[0], w[1], attn.softmax_scale(), ref);
  std::printf("max |fused - exact softmax reference| = %.3g\n",
              max_abs_diff(out, ref));
  return allclose(out, ref, 1e-3, 1e-4) ? 0 : 1;
}
