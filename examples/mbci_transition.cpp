// The MBCI transition (paper §II-A, Fig. 2) as an API tour: the same
// GEMM chain flips from compute-bound to memory-bound as its reduction
// dimension shrinks, and fusion profit follows.
//
//   build/examples/mbci_transition
#include <cstdio>

#include "baselines/unfused.hpp"
#include "graph/partitioner.hpp"
#include "engine/engine.hpp"

int main() {
  using namespace mcf;
  const GpuSpec gpu = a100();
  const FusionEngine engine(gpu);
  std::printf("P/W on %s = %.1f FLOP per element moved\n\n", gpu.name.c_str(),
              gpu.flops_per_byte());
  std::printf("%-6s %-12s %-10s %-12s %-12s %-9s\n", "K", "phi(op/elem)",
              "MBCI?", "unfused(us)", "fused(us)", "speedup");

  for (const std::int64_t k : {1024, 512, 256, 128, 64, 32, 16}) {
    const ChainSpec chain = ChainSpec::gemm_chain(
        "k" + std::to_string(k), 1, 512, 512, k, 64);
    const double phi = chain_flops_per_byte(chain);
    const bool mbci = is_mbci(chain, gpu);
    const double unfused = UnfusedBaseline(gpu).run(chain).time_s;
    const FusionResult fused = engine.fuse(chain);
    if (!fused.ok()) return 1;
    std::printf("%-6lld %-12.1f %-10s %-12.2f %-12.2f %.2fx\n",
                static_cast<long long>(k), phi, mbci ? "yes" : "no",
                unfused * 1e6, fused.time_s() * 1e6,
                unfused / fused.time_s());
  }
  std::printf("\nAs K shrinks the chain crosses the P/W line and the fusion\n"
              "speedup grows — the paper's motivation for MBCI fusion.\n");
  return 0;
}
